// Tests for the machine-readable bench artifact layer (bench/bench_util.h):
// flag parsing, the wsp-bench-v1 JSON schema, and file round-tripping.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "server_section.h"
#include "support/benchdiff.h"
#include "support/json.h"

namespace wsp {
namespace {

char** fake_argv(std::vector<std::string>& storage) {
  static std::vector<char*> ptrs;
  ptrs.clear();
  for (auto& s : storage) ptrs.push_back(s.data());
  return ptrs.data();
}

TEST(BenchFlags, ParseThreadsBothForms) {
  std::vector<std::string> a1 = {"prog", "--threads", "4"};
  EXPECT_EQ(bench::parse_threads(3, fake_argv(a1)), 4u);
  std::vector<std::string> a2 = {"prog", "--threads=8"};
  EXPECT_EQ(bench::parse_threads(2, fake_argv(a2)), 8u);
  std::vector<std::string> a3 = {"prog"};
  EXPECT_EQ(bench::parse_threads(1, fake_argv(a3), 2), 2u);
  std::vector<std::string> a4 = {"prog", "--threads", "0"};
  EXPECT_EQ(bench::parse_threads(3, fake_argv(a4)), 1u);  // clamped
}

TEST(BenchFlags, ParseStringFlagBothForms) {
  std::vector<std::string> a1 = {"prog", "--outdir", "/tmp/x"};
  EXPECT_EQ(bench::parse_string_flag(3, fake_argv(a1), "--outdir"), "/tmp/x");
  std::vector<std::string> a2 = {"prog", "--outdir=/tmp/y"};
  EXPECT_EQ(bench::parse_string_flag(2, fake_argv(a2), "--outdir"), "/tmp/y");
  std::vector<std::string> a3 = {"prog"};
  EXPECT_EQ(bench::parse_string_flag(1, fake_argv(a3), "--outdir", "dflt"),
            "dflt");
}

TEST(BenchFlags, ParseBoolFlag) {
  std::vector<std::string> a1 = {"prog", "--with-explore"};
  EXPECT_TRUE(bench::parse_bool_flag(2, fake_argv(a1), "--with-explore"));
  EXPECT_FALSE(bench::parse_bool_flag(2, fake_argv(a1), "--trace"));
}

bench::BenchResult sample_result() {
  bench::BenchResult r;
  r.name = "unit";
  r.config["seed"] = "61";
  r.config["variant"] = "base";
  r.cycles["total"] = 123456789.0;
  r.cycles["per_block"] = 421.5;
  r.wall_ns = 987654321;
  r.threads = 2;
  return r;
}

TEST(BenchJson, SchemaFieldsPresentAndTyped) {
  const json::Value doc = bench::to_json(sample_result());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("schema").as_string(), "wsp-bench-v1");
  EXPECT_EQ(doc.at("name").as_string(), "unit");
  ASSERT_TRUE(doc.at("config").is_object());
  EXPECT_EQ(doc.at("config").at("seed").as_string(), "61");
  ASSERT_TRUE(doc.at("cycles").is_object());
  EXPECT_EQ(doc.at("cycles").at("total").as_number(), 123456789.0);
  EXPECT_EQ(doc.at("cycles").at("per_block").as_number(), 421.5);
  EXPECT_EQ(doc.at("wall_ns").as_number(), 987654321.0);
  EXPECT_EQ(doc.at("threads").as_number(), 2.0);
  ASSERT_TRUE(doc.at("git_rev").is_string());
  EXPECT_FALSE(doc.at("git_rev").as_string().empty());
}

TEST(BenchJson, WriteRoundTripsThroughParser) {
  const std::string dir = ::testing::TempDir();
  const std::string path = bench::write_bench_json(sample_result(), dir);
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("BENCH_unit.json"), std::string::npos);

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  const json::Value doc = json::Value::parse(text);
  EXPECT_EQ(doc.at("schema").as_string(), "wsp-bench-v1");
  // Large integers must serialize exactly (no exponent notation).
  EXPECT_NE(text.find("123456789"), std::string::npos);
  EXPECT_NE(text.find("987654321"), std::string::npos);
  EXPECT_EQ(doc.at("cycles").at("total").as_number(), 123456789.0);
}

TEST(BenchJson, WriteFailsIntoMissingDirectory) {
  EXPECT_EQ(bench::write_bench_json(sample_result(), "/nonexistent-dir-xyz"),
            "");
}

server::RunReport sample_server_report() {
  server::RunReport rep;
  rep.offered = 96;
  rep.admitted = 90;
  rep.completed = 85;
  rep.dropped = 6;
  rep.aborted = 5;
  rep.retried = 23;
  rep.repaired = 4;
  rep.faults_injected = 31;
  rep.shed = 2;
  rep.degrade_enters = 1;
  rep.records = 720;
  rep.wire_bytes = 1234567;
  rep.bytes_digest = 0xDEADBEEF;
  rep.latency = {1.5e6, 3.0e6, 4.5e6, 6.0e6};
  rep.makespan_cycles = 2.5e8;
  rep.throughput_per_gcycle = 360.0;
  rep.peak_virtual_depth = 11;
  rep.peak_sessions = 14;
  rep.mean_service_cycles = 2.1e6;
  rep.platform_cycles_base = 9.9e9;
  rep.platform_cycles_optimized = 3.3e8;
  rep.equivalent_speedup = 30.0;
  // Host-dependent fields: must NOT leak into the cycles map.
  rep.wall_ns = 42;
  rep.backpressure_waits = 7;
  rep.peak_real_depth = 9;
  rep.threads = 8;
  return rep;
}

TEST(BenchServerSchema, MetricsLandUnderPrefixWithExpectedKeys) {
  bench::BenchResult r;
  r.name = "server";
  bench::append_server_metrics(r, "steady/", sample_server_report());

  const json::Value doc = bench::to_json(r);
  const json::Value& cycles = doc.at("cycles");
  ASSERT_TRUE(cycles.is_object());
  // The fields ISSUE.md names explicitly: throughput, latency, drops.
  EXPECT_EQ(cycles.at("steady/throughput_per_gcycle").as_number(), 360.0);
  EXPECT_EQ(cycles.at("steady/latency_p50_cycles").as_number(), 1.5e6);
  EXPECT_EQ(cycles.at("steady/latency_p99_cycles").as_number(), 4.5e6);
  EXPECT_EQ(cycles.at("steady/dropped").as_number(), 6.0);
  // Session accounting and platform-equivalent pricing.
  EXPECT_EQ(cycles.at("steady/offered").as_number(), 96.0);
  EXPECT_EQ(cycles.at("steady/admitted").as_number(), 90.0);
  EXPECT_EQ(cycles.at("steady/wire_bytes").as_number(), 1234567.0);
  EXPECT_EQ(cycles.at("steady/bytes_digest").as_number(),
            static_cast<double>(0xDEADBEEFu));
  EXPECT_EQ(cycles.at("steady/platform_cycles_base").as_number(), 9.9e9);
  EXPECT_EQ(cycles.at("steady/platform_cycles_opt").as_number(), 3.3e8);
  EXPECT_EQ(cycles.at("steady/platform_equiv_speedup").as_number(), 30.0);
  EXPECT_EQ(cycles.at("steady/queue_depth_peak").as_number(), 11.0);
  // Fault/recovery accounting (the chaos section keys, docs/faults.md).
  EXPECT_EQ(cycles.at("steady/completed").as_number(), 85.0);
  EXPECT_EQ(cycles.at("steady/aborted").as_number(), 5.0);
  EXPECT_EQ(cycles.at("steady/retried").as_number(), 23.0);
  EXPECT_EQ(cycles.at("steady/repaired").as_number(), 4.0);
  EXPECT_EQ(cycles.at("steady/faults_injected").as_number(), 31.0);
  EXPECT_EQ(cycles.at("steady/shed").as_number(), 2.0);
  EXPECT_EQ(cycles.at("steady/degrade_enters").as_number(), 1.0);
}

TEST(BenchServerSchema, HostDependentFieldsStayOutOfCycles) {
  bench::BenchResult r;
  r.name = "server";
  bench::append_server_metrics(r, "overload/", sample_server_report());
  // The cycles map is the determinism contract: wall time, backpressure
  // waits, real queue depth and thread count must never appear in it.
  for (const auto& [key, value] : r.cycles) {
    (void)value;
    EXPECT_EQ(key.find("wall"), std::string::npos) << key;
    EXPECT_EQ(key.find("backpressure"), std::string::npos) << key;
    EXPECT_EQ(key.find("real"), std::string::npos) << key;
    EXPECT_EQ(key.find("threads"), std::string::npos) << key;
  }
  EXPECT_EQ(r.cycles.count("overload/dropped"), 1u);
}

TEST(BenchServerSchema, DigestSurvivesJsonRoundTrip) {
  bench::BenchResult r;
  r.name = "server_digest";
  bench::append_server_metrics(r, "x/", sample_server_report());

  const std::string dir = ::testing::TempDir();
  const std::string path = bench::write_bench_json(r, dir);
  ASSERT_FALSE(path.empty());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  // A 32-bit digest is exactly representable as a double, so the value must
  // round-trip bit-for-bit through serialize + parse.
  const json::Value doc = json::Value::parse(text);
  EXPECT_EQ(doc.at("cycles").at("x/bytes_digest").as_number(),
            static_cast<double>(0xDEADBEEFu));
}

// --- the regression gate (support/benchdiff.h, docs/benchmarks.md) ---------

TEST(BenchGate, GlobMatch) {
  EXPECT_TRUE(bench::glob_match("*", "anything"));
  EXPECT_TRUE(bench::glob_match("steady/*", "steady/throughput_per_gcycle"));
  EXPECT_FALSE(bench::glob_match("steady/*", "chaos/leaked"));
  EXPECT_TRUE(bench::glob_match("*/leaked", "chaos/leaked"));
  EXPECT_TRUE(bench::glob_match("*digest*", "steady/bytes_digest"));
  EXPECT_TRUE(bench::glob_match("*_opt", "rc4/cycles_opt"));
  EXPECT_FALSE(bench::glob_match("*_opt", "rc4/cycles_optimized"));
  EXPECT_TRUE(bench::glob_match("exact", "exact"));
  EXPECT_FALSE(bench::glob_match("exact", "exactly"));
  EXPECT_TRUE(bench::glob_match("a*b*c", "a__b__b__c"));  // backtracking
  EXPECT_FALSE(bench::glob_match("a*b*c", "a__c__b"));
}

TEST(BenchGate, DefaultTableClassifiesKeyMetrics) {
  const auto& rules = bench::default_tolerance_table();
  const auto* thr =
      bench::match_rule(rules, "steady/throughput_per_gcycle");
  ASSERT_NE(thr, nullptr);
  EXPECT_EQ(thr->dir, bench::Direction::kHigherBetter);
  const auto* leak = bench::match_rule(rules, "chaos/leaked");
  ASSERT_NE(leak, nullptr);
  EXPECT_EQ(leak->dir, bench::Direction::kExact);
  const auto* p99 = bench::match_rule(rules, "chaos/latency_p99_cycles");
  ASSERT_NE(p99, nullptr);
  EXPECT_EQ(p99->dir, bench::Direction::kLowerBetter);
  // Digests change whenever the workload mix changes — informational only.
  const auto* digest = bench::match_rule(rules, "steady/bytes_digest");
  ASSERT_NE(digest, nullptr);
  EXPECT_EQ(digest->dir, bench::Direction::kInfo);
}

json::Value bench_doc(double throughput, double p99, double leaked) {
  bench::BenchResult r;
  r.name = "server";
  r.cycles["steady/throughput_per_gcycle"] = throughput;
  r.cycles["steady/latency_p99_cycles"] = p99;
  r.cycles["steady/leaked"] = leaked;
  r.cycles["steady/bytes_digest"] = 12345.0;
  return bench::to_json(r);
}

TEST(BenchGate, ThroughputDropBeyondToleranceFails) {
  const json::Value base = bench_doc(400.0, 4.5e6, 0.0);
  // 10% throughput drop against a 5% tolerance: must gate.
  const auto rep = bench::check_bench(base, bench_doc(360.0, 4.5e6, 0.0));
  EXPECT_FALSE(rep.ok());
  ASSERT_EQ(rep.regressions.size(), 1u);
  EXPECT_EQ(rep.regressions[0].key, "steady/throughput_per_gcycle");
  EXPECT_NEAR(rep.regressions[0].delta_pct, -10.0, 1e-9);
  // The report must say so in prose, too.
  const std::string text = bench::format_check_report(rep);
  EXPECT_NE(text.find("throughput_per_gcycle"), std::string::npos);
}

TEST(BenchGate, InToleranceWobblePasses) {
  const json::Value base = bench_doc(400.0, 4.5e6, 0.0);
  // -3% throughput and +8% p99: both inside the 5%/10% tolerances.
  const auto rep = bench::check_bench(base, bench_doc(388.0, 4.86e6, 0.0));
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.regressions.size(), 0u);
  EXPECT_EQ(rep.drifts.size(), 2u);  // still reported as drift
}

TEST(BenchGate, ImprovementsNeverGate) {
  const json::Value base = bench_doc(400.0, 4.5e6, 0.0);
  // +50% throughput, -50% latency: the gate is one-sided.
  const auto rep = bench::check_bench(base, bench_doc(600.0, 2.25e6, 0.0));
  EXPECT_TRUE(rep.ok());
}

TEST(BenchGate, LeakCounterIsExact) {
  const json::Value base = bench_doc(400.0, 4.5e6, 0.0);
  // A single leaked session is a hard failure regardless of tolerance.
  const auto rep = bench::check_bench(base, bench_doc(400.0, 4.5e6, 1.0));
  EXPECT_FALSE(rep.ok());
  ASSERT_EQ(rep.regressions.size(), 1u);
  EXPECT_EQ(rep.regressions[0].key, "steady/leaked");
}

TEST(BenchGate, MissingMetricIsSchemaRegression) {
  const json::Value base = bench_doc(400.0, 4.5e6, 0.0);
  bench::BenchResult r;
  r.name = "server";
  r.cycles["steady/throughput_per_gcycle"] = 400.0;  // p99 + leaked gone
  const auto rep = bench::check_bench(base, bench::to_json(r));
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(rep.missing.size(), 3u);
  EXPECT_EQ(rep.regressions.size(), 0u);
}

TEST(BenchGate, NewMetricsPassButAreReported) {
  bench::BenchResult r;
  r.name = "server";
  r.cycles["steady/throughput_per_gcycle"] = 400.0;
  const json::Value base = bench::to_json(r);
  r.cycles["steady/new_counter"] = 7.0;
  const auto rep = bench::check_bench(base, bench::to_json(r));
  EXPECT_TRUE(rep.ok());
  ASSERT_EQ(rep.added.size(), 1u);
  EXPECT_EQ(rep.added[0], "steady/new_counter");
  EXPECT_EQ(rep.compared, 1u);
}

TEST(BenchGate, DigestChangesAreInfoNotFailure) {
  const json::Value base = bench_doc(400.0, 4.5e6, 0.0);
  bench::BenchResult r;
  r.name = "server";
  r.cycles["steady/throughput_per_gcycle"] = 400.0;
  r.cycles["steady/latency_p99_cycles"] = 4.5e6;
  r.cycles["steady/leaked"] = 0.0;
  r.cycles["steady/bytes_digest"] = 99999.0;  // totally different digest
  const auto rep = bench::check_bench(base, bench::to_json(r));
  EXPECT_TRUE(rep.ok());
}

TEST(BenchGate, RejectsNonBenchDocuments) {
  EXPECT_THROW(bench::check_bench(json::Value::parse("{\"x\": 1}"),
                                  bench_doc(1.0, 1.0, 0.0)),
               std::runtime_error);
  EXPECT_THROW(bench::load_json_file("/nonexistent-dir-xyz/BENCH_x.json"),
               std::runtime_error);
}

// Blessing a baseline must be byte-deterministic: writing the same result
// twice produces identical files, so re-blessing an unchanged tree never
// dirties the committed baselines.
TEST(BenchGate, BlessOutputIsByteDeterministic) {
  bench::BenchResult r = sample_result();
  r.name = "bless_determinism";
  const std::string dir = ::testing::TempDir();
  auto slurp = [](const std::string& p) {
    std::FILE* f = std::fopen(p.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
    std::fclose(f);
    return text;
  };
  const std::string p1 = bench::write_bench_json(r, dir);
  ASSERT_FALSE(p1.empty());
  const std::string first = slurp(p1);
  const std::string p2 = bench::write_bench_json(r, dir);
  const std::string second = slurp(p2);
  std::remove(p1.c_str());
  EXPECT_EQ(p1, p2);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace wsp
