#include <gtest/gtest.h>

#include "sim/cache.h"

namespace wsp {
namespace {

using sim::Cache;
using sim::CacheConfig;

TEST(Cache, FirstAccessMissesThenHits) {
  Cache c(CacheConfig{1024, 16, 1, 20});
  EXPECT_EQ(c.access(0x100), 20u);
  EXPECT_EQ(c.access(0x100), 0u);
  EXPECT_EQ(c.access(0x104), 0u);  // same line
  EXPECT_EQ(c.access(0x110), 20u);  // next line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, DirectMappedConflict) {
  // 1 KiB direct-mapped, 16 B lines -> 64 sets; addresses 1 KiB apart conflict.
  Cache c(CacheConfig{1024, 16, 1, 20});
  c.access(0x0);
  c.access(0x400);  // evicts 0x0
  EXPECT_EQ(c.access(0x0), 20u);
}

TEST(Cache, TwoWayAssociativityAvoidsConflict) {
  Cache c(CacheConfig{1024, 16, 2, 20});
  c.access(0x0);
  c.access(0x400);  // other way of the same set
  EXPECT_EQ(c.access(0x0), 0u);
  EXPECT_EQ(c.access(0x400), 0u);
}

TEST(Cache, LruEvictionOrder) {
  Cache c(CacheConfig{1024, 16, 2, 20});
  // Set 0 candidates: 0x0, 0x200 (32 sets * 16B = 512B stride for 2-way 1KiB).
  c.access(0x0);
  c.access(0x200);
  c.access(0x0);      // refresh 0x0; LRU is now 0x200
  c.access(0x400);    // evicts 0x200
  EXPECT_EQ(c.access(0x0), 0u) << "0x0 must have survived";
  EXPECT_EQ(c.access(0x200), 20u) << "0x200 must have been evicted";
}

TEST(Cache, ResetClearsState) {
  Cache c(CacheConfig{1024, 16, 2, 20});
  c.access(0x0);
  c.reset();
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_EQ(c.access(0x0), 20u);
}

TEST(Cache, BadGeometryRejected) {
  EXPECT_THROW(Cache(CacheConfig{1000, 16, 2, 20}), std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{1024, 12, 2, 20}), std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{1024, 16, 0, 20}), std::invalid_argument);
}

}  // namespace
}  // namespace wsp
