// Tier-1 tests for the crash-fault tolerance layer (docs/recovery.md):
// TrafficGenerator state snapshots, the EngineCheckpoint chunk codec and
// its semantic validator, quiesce-barrier invariants, the CrashFault
// contract, RunRecorder torn traces, and the scan -> resume pipeline —
// including truncation at every checkpoint-chunk boundary and rejection of
// CRC-valid-but-lying checkpoints (stale slab handles, tampered digests).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "server/checkpoint.h"
#include "server/engine.h"
#include "server/record.h"
#include "server/traffic.h"
#include "support/replay.h"

namespace wsp {
namespace {

using replay::ErrorKind;
using replay::ReplayError;

server::TrafficScenario crash_mix(std::uint64_t seed, std::size_t sessions) {
  server::TrafficScenario s;
  s.seed = seed;
  s.sessions = sessions;
  s.model = server::ArrivalModel::kOpenLoop;
  s.offered_load = 0.8;
  s.ciphers = {ssl::Cipher::kRc4, ssl::Cipher::kAes128Cbc,
               ssl::Cipher::kTripleDesCbc};
  s.transaction_sizes = {512, 2048};
  s.record_bytes = 512;
  return s;
}

server::EngineConfig engine_cfg(unsigned threads, unsigned lanes = 1) {
  server::EngineConfig cfg;
  cfg.threads = threads;
  cfg.shards = 4;
  cfg.queue_capacity = 32;
  cfg.record_batch = 4;
  cfg.batch_lanes = lanes;
  cfg.record_events = true;
  return cfg;
}

/// Captures every barrier checkpoint by value.
struct CollectSink final : server::CheckpointSink {
  std::vector<server::EngineCheckpoint> taken;
  void on_checkpoint(const server::EngineCheckpoint& cp) override {
    taken.push_back(cp);
  }
};

// --- traffic generator snapshots -------------------------------------------

TEST(CheckpointGenerator, SnapshotRestoreResumesDrawSequenceExactly) {
  const auto scenario = crash_mix(11, 40);
  server::TrafficGenerator gen(scenario, 5.0e6, 4);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(gen.next().has_value());

  const server::TrafficGeneratorState snap = gen.state();
  server::TrafficGenerator fresh(scenario, 5.0e6, 4);
  fresh.restore(snap);

  // Every remaining draw must be identical, field for field.
  while (true) {
    const auto a = gen.next();
    const auto b = fresh.next();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) break;
    EXPECT_EQ(a->id, b->id);
    EXPECT_EQ(a->at_cycles, b->at_cycles);
    EXPECT_EQ(a->cipher, b->cipher);
    EXPECT_EQ(a->transaction_bytes, b->transaction_bytes);
    EXPECT_EQ(a->session_seed, b->session_seed);
    EXPECT_EQ(a->phase, b->phase);
    EXPECT_EQ(a->resume, b->resume);
  }
}

TEST(CheckpointGenerator, ClosedLoopPendingArrivalsSurviveSnapshot) {
  auto scenario = crash_mix(12, 24);
  scenario.model = server::ArrivalModel::kClosedLoop;
  scenario.users = 4;
  scenario.think_cycles = 1e6;
  server::TrafficGenerator gen(scenario, 5.0e6, 4);
  // Drain a few arrivals and feed completions back so the ready heap has
  // genuine content when the snapshot is taken.
  for (int i = 0; i < 6; ++i) {
    const auto a = gen.next();
    ASSERT_TRUE(a.has_value());
    gen.on_outcome(*a, a->at_cycles + 2.0e6, false);
  }
  const auto snap = gen.state();
  EXPECT_FALSE(snap.ready.empty());

  server::TrafficGenerator fresh(scenario, 5.0e6, 4);
  fresh.restore(snap);
  const auto a = gen.next();
  const auto b = fresh.next();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->id, b->id);
  EXPECT_EQ(a->at_cycles, b->at_cycles);
  EXPECT_EQ(a->user, b->user);
}

// --- checkpoint codec -------------------------------------------------------

/// Runs the scenario with barriers armed and returns the captured
/// checkpoints (at least one, asserted).
std::vector<server::EngineCheckpoint> capture_checkpoints(
    const server::TrafficScenario& scenario, unsigned threads, unsigned lanes,
    double every) {
  CollectSink sink;
  server::EngineConfig cfg = engine_cfg(threads, lanes);
  cfg.checkpoint_every = every;
  cfg.checkpoint_sink = &sink;
  server::Engine engine(cfg);
  (void)engine.run(scenario);
  EXPECT_FALSE(sink.taken.empty()) << "barrier interval too long for this run";
  return sink.taken;
}

TEST(CheckpointCodec, EncodeDecodeIsIdentityOnRealCheckpoints) {
  const auto scenario = crash_mix(21, 32);
  for (const auto& cp : capture_checkpoints(scenario, 2, 1, 2.0e7)) {
    std::vector<std::uint8_t> payload;
    server::encode_checkpoint(payload, cp);
    const server::EngineCheckpoint back = server::decode_checkpoint(payload);
    EXPECT_EQ(back, cp) << "seq " << cp.seq;
    // A freshly captured checkpoint must also pass semantic validation.
    EXPECT_NO_THROW(server::validate_checkpoint(back));
  }
}

TEST(CheckpointCodec, TruncatedPayloadThrowsTyped) {
  const auto scenario = crash_mix(22, 24);
  const auto cps = capture_checkpoints(scenario, 1, 1, 3.0e7);
  std::vector<std::uint8_t> payload;
  server::encode_checkpoint(payload, cps.back());
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, payload.size() / 2,
                          payload.size() - 1}) {
    std::vector<std::uint8_t> prefix(payload.begin(), payload.begin() + cut);
    EXPECT_THROW((void)server::decode_checkpoint(prefix), ReplayError)
        << "cut=" << cut;
  }
  // Trailing garbage is damage too, not padding.
  auto padded = payload;
  padded.push_back(0);
  EXPECT_THROW((void)server::decode_checkpoint(padded), ReplayError);
}

TEST(CheckpointCodec, StaleSlabHandleGenerationIsMalformed) {
  // Parked sessions only exist on the batched plane: lanes > 1 leaves
  // staged-but-unflushed cohort members at the barrier.
  const auto scenario = crash_mix(23, 48);
  bool saw_parked = false;
  for (auto cp : capture_checkpoints(scenario, 2, 8, 1.0e7)) {
    for (auto& entry : cp.entries) {
      if (!entry.parked) continue;
      saw_parked = true;
      // A live handle's generation is odd; an even one is a handle that was
      // already recycled when the checkpoint claims it was live.
      EXPECT_EQ(entry.parked_info.handle.gen % 2, 1u);
      server::EngineCheckpoint bad = cp;
      for (auto& e : bad.entries) {
        if (e.parked) e.parked_info.handle.gen &= ~1u;
      }
      try {
        server::validate_checkpoint(bad);
        FAIL() << "stale generation accepted";
      } catch (const ReplayError& e) {
        EXPECT_EQ(e.kind(), ErrorKind::kMalformed);
        EXPECT_NE(std::string(e.what()).find("stale"), std::string::npos);
      }
      break;
    }
  }
  EXPECT_TRUE(saw_parked) << "no barrier caught a staged cohort; widen the "
                             "scenario or shrink checkpoint_every";
}

TEST(CheckpointCodec, TamperedShardDigestIsMalformed) {
  const auto scenario = crash_mix(24, 32);
  auto cps = capture_checkpoints(scenario, 1, 1, 2.0e7);
  server::EngineCheckpoint cp = cps.back();
  ASSERT_FALSE(cp.shards.empty());
  // Find a shard with finalized entries (nonzero digest chain) and lie
  // about it: the validator recomputes the chain and must disagree.
  bool tampered = false;
  for (auto& sh : cp.shards) {
    if (sh.events_digest == 0) continue;
    sh.events_digest ^= 0x1;
    tampered = true;
    break;
  }
  ASSERT_TRUE(tampered) << "no shard had finalized entries at the barrier";
  try {
    server::validate_checkpoint(cp);
    FAIL() << "tampered digest accepted";
  } catch (const ReplayError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kMalformed);
  }
}

// --- quiesce invariants -----------------------------------------------------

TEST(CheckpointQuiesce, ScalarPlaneParksNothing) {
  const auto scenario = crash_mix(31, 32);
  for (const auto& cp : capture_checkpoints(scenario, 4, 1, 1.5e7)) {
    for (const auto& entry : cp.entries) {
      EXPECT_FALSE(entry.parked)
          << "lanes == 1 has no cohorts, so quiesce must fully finalize";
    }
    EXPECT_EQ(cp.latencies.size(), cp.admitted());
  }
}

TEST(CheckpointQuiesce, CountsAndTimesAreCoherent) {
  const auto scenario = crash_mix(32, 48);
  double prev_now = -1.0;
  std::uint64_t seq = 0;
  for (const auto& cp : capture_checkpoints(scenario, 2, 8, 1.0e7)) {
    EXPECT_EQ(cp.seq, seq++);
    EXPECT_GT(cp.virtual_now, prev_now);
    prev_now = cp.virtual_now;
    EXPECT_LE(cp.admitted(), cp.offered);
    EXPECT_EQ(cp.shards.size(), 4u);
    std::uint64_t shard_admitted = 0;
    for (const auto& sh : cp.shards) shard_admitted += sh.admitted;
    EXPECT_EQ(shard_admitted, cp.admitted());
  }
}

// --- crash + restore --------------------------------------------------------

TEST(CheckpointCrash, CrashFaultCarriesTimingAndFiresDueBarriers) {
  const auto scenario = crash_mix(41, 32);
  const auto ref = server::Engine(engine_cfg(1)).run(scenario);
  const double crash_at = ref.makespan_cycles * 0.5;

  CollectSink sink;
  server::EngineConfig cfg = engine_cfg(1);
  cfg.checkpoint_every = crash_at / 4.0;
  cfg.checkpoint_sink = &sink;
  cfg.faults.crash_at_cycles = crash_at;
  server::Engine engine(cfg);
  try {
    (void)engine.run(scenario);
    FAIL() << "expected CrashFault";
  } catch (const server::CrashFault& e) {
    EXPECT_EQ(e.deadline_cycles(), crash_at);
    EXPECT_GE(e.at_cycles(), crash_at) << "death precedes the deadline";
  }
  // Every barrier due at or before the crash fired first, none after.
  ASSERT_FALSE(sink.taken.empty());
  for (const auto& cp : sink.taken) EXPECT_LE(cp.virtual_now, crash_at);
}

TEST(CheckpointCrash, RestoreFromAnyBarrierMatchesUninterruptedRun) {
  const auto scenario = crash_mix(42, 40);
  const auto ref = server::Engine(engine_cfg(2)).run(scenario);
  const auto cps =
      capture_checkpoints(scenario, 2, 1, ref.makespan_cycles / 5.0);
  for (const auto& cp : cps) {
    server::Engine engine(engine_cfg(2));
    const auto resumed = engine.run(scenario, cp);
    const auto mismatches = server::compare_reports(ref, resumed);
    EXPECT_TRUE(mismatches.empty())
        << "seq " << cp.seq << ": " << mismatches.front();
  }
}

TEST(CheckpointCrash, RestoreRejectsWrongScenarioStructurally) {
  const auto scenario = crash_mix(43, 32);
  const auto cps = capture_checkpoints(scenario, 1, 1, 2.0e7);
  auto other = crash_mix(43, 8);  // fewer sessions than the checkpoint offered
  server::Engine engine(engine_cfg(1));
  EXPECT_THROW((void)engine.run(other, cps.back()), std::logic_error);
}

// --- config validation ------------------------------------------------------

TEST(CheckpointConfig, InvalidIntervalsAndCrashTimesRejected) {
  const auto scenario = crash_mix(51, 8);
  {
    server::EngineConfig cfg = engine_cfg(1);
    cfg.checkpoint_every = -1.0;
    EXPECT_THROW(server::Engine{cfg}, std::invalid_argument);
  }
  {
    server::EngineConfig cfg = engine_cfg(1);
    cfg.checkpoint_every = std::numeric_limits<double>::infinity();
    EXPECT_THROW(server::Engine{cfg}, std::invalid_argument);
  }
  {
    server::EngineConfig cfg = engine_cfg(1);
    cfg.faults.crash_at_cycles = -5.0;
    EXPECT_THROW(server::Engine{cfg}, std::invalid_argument);
  }
  {
    // checkpoint_every without a sink is legal and inert.
    server::EngineConfig cfg = engine_cfg(1);
    cfg.checkpoint_every = 1.0e7;
    const auto rep = server::Engine(cfg).run(scenario);
    EXPECT_EQ(rep.completed + rep.aborted, rep.admitted);
  }
}

// --- RunRecorder + scan + resume -------------------------------------------

struct TornTrace {
  std::vector<std::uint8_t> bytes;
  std::vector<std::size_t> offsets;  ///< checkpoint chunk boundaries
  server::RunReport reference;       ///< the uninterrupted run
};

TornTrace record_torn_trace(const server::TrafficScenario& scenario,
                            unsigned threads, unsigned lanes,
                            double crash_frac = 0.6) {
  TornTrace out;
  server::EngineConfig cfg = engine_cfg(threads, lanes);
  out.reference = server::Engine(cfg).run(scenario);

  cfg.checkpoint_every = out.reference.makespan_cycles / 6.0;
  cfg.faults.crash_at_cycles = out.reference.makespan_cycles * crash_frac;
  server::RunRecorder recorder(cfg, scenario);
  server::Engine engine(recorder.engine_config());
  try {
    (void)engine.run(scenario);
    ADD_FAILURE() << "expected CrashFault";
  } catch (const server::CrashFault&) {
    recorder.crash();
  }
  EXPECT_GT(recorder.checkpoints(), 0u);
  out.bytes = recorder.bytes();
  out.offsets = recorder.checkpoint_offsets();
  return out;
}

TEST(CheckpointResume, TornTraceScansAndResumesBitIdentically) {
  const auto scenario = crash_mix(61, 40);
  const TornTrace torn = record_torn_trace(scenario, 2, 1);

  const auto scan = server::scan_trace_for_resume(torn.bytes);
  EXPECT_FALSE(scan.complete);
  EXPECT_FALSE(scan.tear.empty()) << "a torn trace must report its tear";
  EXPECT_EQ(scan.checkpoints.size(), torn.offsets.size());
  EXPECT_EQ(scan.scanned_bytes, torn.bytes.size());

  const auto result = server::resume_run(scan);
  EXPECT_TRUE(result.ok());
  const auto mismatches = server::compare_reports(torn.reference, result.report);
  EXPECT_TRUE(mismatches.empty()) << mismatches.front();
  EXPECT_EQ(result.report.completed + result.report.aborted,
            result.report.admitted)
      << "resume must preserve the leak invariant";
}

TEST(CheckpointResume, TruncationAtEveryCheckpointBoundaryStillResumes) {
  const auto scenario = crash_mix(62, 40);
  const TornTrace torn = record_torn_trace(scenario, 1, 1);
  ASSERT_GE(torn.offsets.size(), 2u);

  // Cutting at checkpoint k's first header byte leaves exactly k usable
  // checkpoints; resume from each prefix must still match the reference.
  for (std::size_t k = 0; k < torn.offsets.size(); ++k) {
    std::vector<std::uint8_t> prefix(torn.bytes.begin(),
                                     torn.bytes.begin() + torn.offsets[k]);
    const auto scan = server::scan_trace_for_resume(prefix);
    EXPECT_EQ(scan.checkpoints.size(), k) << "cut at checkpoint " << k;
    const auto result = server::resume_run(scan);
    const auto mismatches =
        server::compare_reports(torn.reference, result.report);
    EXPECT_TRUE(mismatches.empty())
        << "cut at checkpoint " << k << ": " << mismatches.front();
  }
}

TEST(CheckpointResume, MidChunkTearFallsBackToPreviousCheckpoint) {
  const auto scenario = crash_mix(63, 40);
  const TornTrace torn = record_torn_trace(scenario, 2, 1);
  ASSERT_GE(torn.offsets.size(), 2u);

  // Tear a few bytes into the LAST checkpoint chunk: the scan must stop at
  // the previous one and the resume must still verify.
  std::vector<std::uint8_t> mid(torn.bytes.begin(),
                                torn.bytes.begin() + torn.offsets.back() + 3);
  const auto scan = server::scan_trace_for_resume(mid);
  EXPECT_EQ(scan.checkpoints.size(), torn.offsets.size() - 1);
  EXPECT_FALSE(scan.tear.empty());
  const auto result = server::resume_run(scan);
  const auto mismatches = server::compare_reports(torn.reference, result.report);
  EXPECT_TRUE(mismatches.empty()) << mismatches.front();
}

TEST(CheckpointResume, CompleteTraceVerifiesAgainstItsOwnRecording) {
  const auto scenario = crash_mix(64, 32);
  server::EngineConfig cfg = engine_cfg(2);
  server::RunRecorder recorder(cfg, scenario);
  cfg = recorder.engine_config();
  cfg.checkpoint_every = 2.0e7;
  server::Engine engine(cfg);
  ASSERT_TRUE(recorder.finish(engine.run(scenario)));

  const auto scan = server::scan_trace_for_resume(recorder.bytes());
  EXPECT_TRUE(scan.complete);
  EXPECT_TRUE(scan.tear.empty());
  // Complete trace: resume_run verifies against the recorded report, at a
  // different thread count than the recording ran with.
  const auto result = server::resume_run(scan, 8);
  EXPECT_TRUE(result.ok()) << result.mismatches.front();
}

TEST(CheckpointResume, InputDamageRethrowsScanDamageIsTyped) {
  const auto scenario = crash_mix(65, 24);
  const TornTrace torn = record_torn_trace(scenario, 1, 1);

  // Damage BEFORE the inputs complete: no run to resume, scan throws.
  std::vector<std::uint8_t> early(torn.bytes.begin(), torn.bytes.begin() + 12);
  EXPECT_THROW((void)server::scan_trace_for_resume(early), ReplayError);

  // A CRC-valid checkpoint that lies about the scenario: resume_run must
  // reject it as typed kMalformed, never feed it to the engine.
  auto scan = server::scan_trace_for_resume(torn.bytes);
  ASSERT_FALSE(scan.checkpoints.empty());
  scan.checkpoints.back().offered = scenario.sessions + 1000;
  try {
    (void)server::resume_run(scan);
    FAIL() << "lying checkpoint accepted";
  } catch (const ReplayError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kMalformed);
  }
}

TEST(CheckpointResume, RecorderReportsFileErrors) {
  const auto scenario = crash_mix(66, 8);
  server::EngineConfig cfg = engine_cfg(1);
  server::RunRecorder recorder(cfg, scenario, {}, "/nonexistent-dir-xyz/t.wspr");
  EXPECT_FALSE(recorder.ok());
  EXPECT_NE(recorder.error().find("/nonexistent-dir-xyz"), std::string::npos);
}

}  // namespace
}  // namespace wsp
