// Tier-2 acceptance suite for crash-fault tolerance (docs/recovery.md):
// crash -> restore -> continue must produce a RunReport — every
// deterministic scalar, latency quantile, per-shard events_digest and the
// full event stream — bit-identical to the uninterrupted run, for every
// --threads x batch_lanes pair, under benign and chaos fault mixes, and
// regardless of which thread count the torn trace was recorded at.  Also a
// designated sanitizer workload: sanitize.sh runs this suite under ASan and
// TSan (the quiesce barrier is a scheduler drain, so it races with the
// worker pool if anything is wrong).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "server/checkpoint.h"
#include "server/engine.h"
#include "server/record.h"
#include "support/replay.h"

namespace wsp {
namespace {

server::TrafficScenario storm_mix(std::uint64_t seed, std::size_t sessions) {
  server::TrafficScenario s;
  s.seed = seed;
  s.sessions = sessions;
  s.model = server::ArrivalModel::kOpenLoop;
  s.offered_load = 0.9;
  s.ciphers = {ssl::Cipher::kRc4, ssl::Cipher::kAes128Cbc,
               ssl::Cipher::kTripleDesCbc};
  s.transaction_sizes = {512, 2048, 4096};
  s.record_bytes = 512;
  return s;
}

server::FaultConfig chaos_faults() {
  server::FaultConfig f;
  f.wire_flip_rate = 0.05;
  f.handshake_failure_rate = 0.05;
  f.abort_rate = 0.05;
  f.stall_rate = 0.05;
  return f;
}

server::EngineConfig base_cfg(unsigned threads, unsigned lanes,
                              const server::FaultConfig& faults) {
  server::EngineConfig cfg;
  cfg.threads = threads;
  cfg.shards = 4;
  cfg.queue_capacity = 32;
  cfg.record_batch = 4;
  cfg.batch_lanes = lanes;
  cfg.faults = faults;
  cfg.record_events = true;
  return cfg;
}

/// Records a run, kills it at `crash_frac` of the reference makespan, and
/// returns the torn trace's bytes.  The reference (uninterrupted) report is
/// returned through `ref`.
std::vector<std::uint8_t> torn_trace(const server::TrafficScenario& scenario,
                                     unsigned threads, unsigned lanes,
                                     const server::FaultConfig& faults,
                                     server::RunReport& ref,
                                     double crash_frac = 0.6) {
  server::EngineConfig cfg = base_cfg(threads, lanes, faults);
  ref = server::Engine(cfg).run(scenario);

  // A CrashFault fires at the first ARRIVAL past the deadline, so the
  // deadline must land inside the arrival span — under chaos stalls the
  // makespan tail stretches well past the last arrival, hence the
  // per-scenario fraction.  Barriers are paced off the crash time so a few
  // always precede it.
  cfg.checkpoint_every = ref.makespan_cycles * crash_frac / 4.0;
  cfg.faults.crash_at_cycles = ref.makespan_cycles * crash_frac;
  server::RunRecorder recorder(cfg, scenario);
  server::Engine engine(recorder.engine_config());
  try {
    (void)engine.run(scenario);
    ADD_FAILURE() << "expected CrashFault";
  } catch (const server::CrashFault&) {
    recorder.crash();
  }
  EXPECT_GT(recorder.checkpoints(), 0u)
      << "crash landed before the first barrier; shrink checkpoint_every";
  return recorder.bytes();
}

void expect_bit_identical(const server::RunReport& ref,
                          const server::RunReport& got, const char* what) {
  SCOPED_TRACE(what);
  const auto mismatches = server::compare_reports(ref, got);
  EXPECT_TRUE(mismatches.empty()) << mismatches.front();
  EXPECT_EQ(got.completed + got.aborted, got.admitted)
      << "resume broke the leak invariant";
}

// The tentpole acceptance bar: record + crash at 2 threads / 1 lane, then
// resume the same torn trace at every {1, 2, 8} x {1, 8} pair.  All of them
// must reproduce the uninterrupted reference bit for bit.  (batch_lanes
// rides in the recorded config, so the lane sweep re-records per width.)
TEST(CheckpointDeterminism, ResumeIsThreadAndLaneInvariantBenign) {
  const auto scenario = storm_mix(8101, 48);
  for (unsigned lanes : {1u, 8u}) {
    server::RunReport ref;
    const auto bytes = torn_trace(scenario, 2, lanes, {}, ref);
    const auto scan = server::scan_trace_for_resume(bytes);
    EXPECT_FALSE(scan.complete);
    for (unsigned threads : {1u, 2u, 8u}) {
      const auto result = server::resume_run(scan, threads);
      expect_bit_identical(ref, result.report, "benign resume sweep");
    }
  }
}

// Same bar under the full chaos mix: wire flips, handshake failures,
// scheduled aborts and stalls active on BOTH sides of the barrier.  The
// restored fault machinery must re-derive every per-session schedule
// exactly (they are functions of the scenario seed, never of the crash).
TEST(CheckpointDeterminism, ResumeIsThreadAndLaneInvariantUnderChaos) {
  const auto scenario = storm_mix(8202, 48);
  const auto faults = chaos_faults();
  for (unsigned lanes : {1u, 8u}) {
    server::RunReport ref;
    const auto bytes = torn_trace(scenario, 2, lanes, faults, ref);
    EXPECT_GT(ref.faults_injected, 0u) << "chaos mix must inject faults";
    const auto scan = server::scan_trace_for_resume(bytes);
    for (unsigned threads : {1u, 2u, 8u}) {
      const auto result = server::resume_run(scan, threads);
      expect_bit_identical(ref, result.report, "chaos resume sweep");
    }
  }
}

// Recording thread count is immaterial: traces recorded at 1 and at 8
// threads for the same scenario resume to the same reference.
TEST(CheckpointDeterminism, RecordingThreadCountIsImmaterial) {
  const auto scenario = storm_mix(8303, 40);
  server::RunReport ref1, ref8;
  const auto t1 = torn_trace(scenario, 1, 1, chaos_faults(), ref1, 0.35);
  const auto t8 = torn_trace(scenario, 8, 1, chaos_faults(), ref8, 0.35);
  expect_bit_identical(ref1, ref8, "references agree across recorders");

  const auto r1 = server::resume_run(server::scan_trace_for_resume(t1), 8);
  const auto r8 = server::resume_run(server::scan_trace_for_resume(t8), 1);
  expect_bit_identical(ref1, r1.report, "recorded at 1, resumed at 8");
  expect_bit_identical(ref1, r8.report, "recorded at 8, resumed at 1");
}

// Every barrier is an equally good restore point: resume from each prefix
// of the torn trace (not just the last checkpoint) and compare.
TEST(CheckpointDeterminism, EveryCheckpointPrefixResumesIdentically) {
  const auto scenario = storm_mix(8404, 40);
  server::EngineConfig cfg = base_cfg(2, 1, chaos_faults());
  const auto ref = server::Engine(cfg).run(scenario);

  cfg.checkpoint_every = ref.makespan_cycles / 6.0;
  cfg.faults.crash_at_cycles = ref.makespan_cycles * 0.7;
  server::RunRecorder recorder(cfg, scenario);
  server::Engine engine(recorder.engine_config());
  try {
    (void)engine.run(scenario);
    ADD_FAILURE() << "expected CrashFault";
  } catch (const server::CrashFault&) {
    recorder.crash();
  }
  const auto& bytes = recorder.bytes();
  const auto& offsets = recorder.checkpoint_offsets();
  ASSERT_GE(offsets.size(), 2u);
  for (std::size_t k = 0; k <= offsets.size(); ++k) {
    const std::size_t cut = k < offsets.size() ? offsets[k] : bytes.size();
    std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
    const auto scan = server::scan_trace_for_resume(prefix);
    EXPECT_EQ(scan.checkpoints.size(), k);
    const auto result = server::resume_run(scan, k % 2 == 0 ? 4 : 1);
    expect_bit_identical(ref, result.report, "prefix resume");
  }
}

// Degrade mode state crosses the barrier: crash while the engine is shedding
// load and the resumed run must still agree on shed/degrade_enters.
TEST(CheckpointDeterminism, DegradeStateSurvivesRestore) {
  auto scenario = storm_mix(8505, 96);
  scenario.offered_load = 3.0;
  server::EngineConfig cfg = base_cfg(2, 1, {});
  cfg.queue_capacity = 8;
  cfg.degrade_depth = 12;
  const auto ref = server::Engine(cfg).run(scenario);
  EXPECT_GT(ref.degrade_enters, 0u) << "overload must trip degrade mode";
  EXPECT_GT(ref.shed, 0u);

  cfg.checkpoint_every = ref.makespan_cycles / 8.0;
  cfg.faults.crash_at_cycles = ref.makespan_cycles * 0.5;
  server::RunRecorder recorder(cfg, scenario);
  server::Engine engine(recorder.engine_config());
  try {
    (void)engine.run(scenario);
    ADD_FAILURE() << "expected CrashFault";
  } catch (const server::CrashFault&) {
    recorder.crash();
  }
  ASSERT_GT(recorder.checkpoints(), 0u);
  const auto result =
      server::resume_run(server::scan_trace_for_resume(recorder.bytes()), 8);
  expect_bit_identical(ref, result.report, "degrade resume");
  EXPECT_EQ(result.report.degrade_enters, ref.degrade_enters);
  EXPECT_EQ(result.report.shed, ref.shed);
}

}  // namespace
}  // namespace wsp
