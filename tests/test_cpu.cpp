#include <gtest/gtest.h>

#include "kernels/regs.h"
#include "sim/cpu.h"
#include "xasm/program.h"

namespace wsp {
namespace {

using kernels::A0;
using kernels::A1;
using kernels::A2;
using kernels::T0;
using kernels::T1;
using kernels::Z;
using xasm::Assembler;

sim::Cpu run_function(Assembler& a, const std::string& fn,
                      std::vector<std::uint32_t> args,
                      const sim::CustomSet* customs = nullptr,
                      sim::CpuConfig cfg = {}) {
  static std::vector<std::unique_ptr<xasm::Program>> keep_alive;
  keep_alive.push_back(std::make_unique<xasm::Program>(a.finish()));
  sim::Cpu cpu(*keep_alive.back(), cfg, customs);
  for (std::size_t i = 0; i < args.size(); ++i) {
    cpu.set_reg(isa::kA0 + static_cast<unsigned>(i), args[i]);
  }
  cpu.call(fn);
  return cpu;
}

TEST(Cpu, BasicAluAndReturn) {
  Assembler a;
  a.func("addmul");
  a.add(T0, A0, A1);
  a.mul(A0, T0, A2);
  a.ret();
  auto cpu = run_function(a, "addmul", {3, 4, 5});
  EXPECT_EQ(cpu.reg(isa::kA0), 35u);
}

TEST(Cpu, ZeroRegisterIsImmutable) {
  Assembler a;
  a.func("f");
  a.addi(Z, Z, 99);
  a.mv(A0, Z);
  a.ret();
  auto cpu = run_function(a, "f", {});
  EXPECT_EQ(cpu.reg(isa::kA0), 0u);
}

TEST(Cpu, SignedVsUnsignedComparisons) {
  Assembler a;
  a.func("f");
  // a0 = -1 (0xffffffff), a1 = 1
  a.slt(T0, A0, A1);   // signed: -1 < 1 -> 1
  a.sltu(T1, A0, A1);  // unsigned: big < 1 -> 0
  a.slli(T0, T0, 1);
  a.or_(A0, T0, T1);
  a.ret();
  auto cpu = run_function(a, "f", {0xffffffffu, 1});
  EXPECT_EQ(cpu.reg(isa::kA0), 2u);
}

TEST(Cpu, MulhuHighWord) {
  Assembler a;
  a.func("f");
  a.mulhu(A0, A0, A1);
  a.ret();
  auto cpu = run_function(a, "f", {0xffffffffu, 0xffffffffu});
  EXPECT_EQ(cpu.reg(isa::kA0), 0xfffffffeu);
}

TEST(Cpu, LoadStoreWidths) {
  Assembler a;
  a.func("f");
  // a0 = address
  a.li(T0, 0xdeadbeef);
  a.sw(T0, A0, 0);
  a.lbu(T1, A0, 0);   // 0xef
  a.lhu(A1, A0, 2);   // 0xdead
  a.lw(A2, A0, 0);
  a.add(A0, T1, A1);
  a.ret();
  auto cpu = run_function(a, "f", {0x20000});
  EXPECT_EQ(cpu.reg(isa::kA0), 0xef + 0xdeadu);
  EXPECT_EQ(cpu.reg(isa::kA0 + 2), 0xdeadbeefu);
}

TEST(Cpu, BranchLoopComputesSum) {
  Assembler a;
  a.func("sum_to_n");
  a.mv(T0, Z);
  a.label("loop");
  a.beq(A0, Z, "done");
  a.add(T0, T0, A0);
  a.addi(A0, A0, -1);
  a.j("loop");
  a.label("done");
  a.mv(A0, T0);
  a.ret();
  auto cpu = run_function(a, "sum_to_n", {100});
  EXPECT_EQ(cpu.reg(isa::kA0), 5050u);
}

TEST(Cpu, NestedCallsWithStack) {
  Assembler a;
  a.func("double_it");
  a.add(A0, A0, A0);
  a.ret();
  a.func("quadruple");
  a.prologue();
  a.call("double_it");
  a.call("double_it");
  a.epilogue();
  auto cpu = run_function(a, "quadruple", {5});
  EXPECT_EQ(cpu.reg(isa::kA0), 20u);
}

TEST(Cpu, CycleAccountingBaseline) {
  Assembler a;
  a.func("three_adds");
  a.add(T0, A0, A1);
  a.add(T0, T0, A0);
  a.add(A0, T0, A1);
  a.ret();
  auto cpu = run_function(a, "three_adds", {1, 2});
  // 3 adds (1 cycle each) + ret (1 + branch penalty 2) = 6.
  EXPECT_EQ(cpu.cycles(), 6u);
  EXPECT_EQ(cpu.instret(), 4u);
}

TEST(Cpu, LoadUseStallCharged) {
  Assembler a1;
  a1.func("f");
  a1.lw(T0, A0, 0);
  a1.add(A0, T0, T0);  // immediate use -> stall
  a1.ret();
  auto stalled = run_function(a1, "f", {0x20000});

  Assembler a2;
  a2.func("f");
  a2.lw(T0, A0, 0);
  a2.nop();            // filler hides latency
  a2.add(A0, T0, T0);
  a2.ret();
  auto hidden = run_function(a2, "f", {0x20000});
  // Same cycle count: the stall equals the cost of the filler nop.
  EXPECT_EQ(stalled.cycles(), hidden.cycles());
  EXPECT_EQ(stalled.cycles(), 6u);  // lw(1) + stall(1) + add(1) + ret(3)
}

TEST(Cpu, TakenBranchCostsMore) {
  Assembler a1;
  a1.func("f");
  a1.beq(Z, Z, "t");  // taken
  a1.label("t");
  a1.ret();
  auto taken = run_function(a1, "f", {});

  Assembler a2;
  a2.func("f");
  a2.bne(Z, Z, "t");  // not taken
  a2.label("t");
  a2.ret();
  auto not_taken = run_function(a2, "f", {});
  EXPECT_GT(taken.cycles(), not_taken.cycles());
}

TEST(Cpu, CustomInstructionDispatchAndLatency) {
  sim::CustomSet customs;
  sim::CustomInstr swap_add;
  swap_add.id = 99;
  swap_add.name = "swap_add";
  swap_add.latency = 5;
  swap_add.execute = [](sim::Cpu& cpu, const isa::Instr& in) {
    cpu.set_reg(in.rd, cpu.reg(in.rs1) + 2 * cpu.reg(in.rs2));
  };
  customs.add(swap_add);

  Assembler a;
  a.func("f");
  a.custom(99, A0, A0, A1);
  a.ret();
  auto cpu = run_function(a, "f", {10, 7}, &customs);
  EXPECT_EQ(cpu.reg(isa::kA0), 24u);
  EXPECT_EQ(cpu.cycles(), 5u + 3u);
}

TEST(Cpu, UserRegisterAccessBoundsChecked) {
  Assembler a;
  a.func("f");
  a.ret();
  auto cpu = run_function(a, "f", {});
  cpu.set_ur(sim::kUrCount - 1, sim::kUrWords - 1, 5);
  EXPECT_EQ(cpu.ur(sim::kUrCount - 1, sim::kUrWords - 1), 5u);
  EXPECT_THROW(cpu.ur(sim::kUrCount, 0), std::out_of_range);
  EXPECT_THROW(cpu.ur(0, sim::kUrWords), std::out_of_range);
  EXPECT_THROW(cpu.set_ur(sim::kUrCount, 0, 1), std::out_of_range);
  EXPECT_THROW(cpu.set_ur(0, sim::kUrWords, 1), std::out_of_range);
}

TEST(Cpu, MalformedCustomDescriptorFaultsInsteadOfCorrupting) {
  // A descriptor that (incorrectly) uses its rd register field as a UR
  // index: encodings with rd >= kUrCount used to write out of bounds on the
  // UR file; they must now raise std::out_of_range.
  sim::CustomSet customs;
  sim::CustomInstr bad_ur;
  bad_ur.id = 900;
  bad_ur.name = "bad_ur";
  bad_ur.execute = [](sim::Cpu& cpu, const isa::Instr& in) {
    cpu.set_ur(in.rd, 0, cpu.reg(in.rs1));
  };
  customs.add(bad_ur);

  Assembler a;
  a.func("f");
  a.custom(900, T1, A0, A0);  // T1 = r12 >= kUrCount (8)
  a.ret();
  EXPECT_THROW(run_function(a, "f", {3}, &customs), std::out_of_range);
}

TEST(Cpu, UnknownCustomInstructionThrows) {
  sim::CustomSet customs;
  Assembler a;
  a.func("f");
  a.custom(1234, A0, A0, A1);
  a.ret();
  EXPECT_THROW(run_function(a, "f", {}, &customs), std::runtime_error);
}

TEST(Cpu, HaltStopsExecution) {
  Assembler a;
  a.func("f");
  a.li(A0, 7);
  a.halt();
  a.li(A0, 9);  // must not run
  a.ret();
  auto cpu = run_function(a, "f", {});
  EXPECT_EQ(cpu.reg(isa::kA0), 7u);
}

TEST(Cpu, CycleLimitEnforced) {
  Assembler a;
  a.func("f");
  a.label("spin");
  a.j("spin");
  sim::CpuConfig cfg;
  cfg.max_cycles = 1000;
  EXPECT_THROW(run_function(a, "f", {}, nullptr, cfg), std::runtime_error);
}

TEST(Cpu, DataSegmentLoadedAtBase) {
  Assembler a;
  a.data_symbol("value");
  const std::uint32_t addr = a.data_word(0xcafef00d);
  a.func("f");
  a.li(T0, addr);
  a.lw(A0, T0, 0);
  a.ret();
  auto cpu = run_function(a, "f", {});
  EXPECT_EQ(cpu.reg(isa::kA0), 0xcafef00du);
}

TEST(Cpu, MemoryOutOfBoundsThrows) {
  Assembler a;
  a.func("f");
  a.li(T0, 0x7ffffff0);
  a.lw(A0, T0, 0);
  a.ret();
  EXPECT_THROW(run_function(a, "f", {}), std::out_of_range);
}

}  // namespace
}  // namespace wsp
