// Differential proof for the batched multi-buffer crypto data plane:
// every byte the aes_mb / des_mb kernels and the BatchDispatcher produce
// must equal what the scalar aes.cpp / des.cpp CBC paths produce, for any
// lane width, ragged batch shape, key size and record length — including
// the CBC residue (chain) each stream carries forward.  A batching layer
// that reorders cross-session work is exactly the kind of change that
// silently corrupts streams; this harness is the proof obligation.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "crypto/aes.h"
#include "crypto/aes_mb.h"
#include "crypto/batch.h"
#include "crypto/des.h"
#include "crypto/des_mb.h"
#include "ssl/ssl.h"
#include "support/random.h"

namespace wsp {
namespace {

using Bytes = std::vector<std::uint8_t>;

// ---------------------------------------------------------------------------
// Scalar references with explicit residue chaining (the SecureChannel
// contract: the chain buffer holds the IV before the call and the last
// ciphertext block after it).

void scalar_aes_encrypt(const Bytes& pt, Bytes& ct, const aes::KeySchedule& ks,
                        std::uint8_t chain[16]) {
  if (pt.empty()) return;
  std::array<std::uint8_t, 16> iv{};
  std::memcpy(iv.data(), chain, 16);
  ct = aes::encrypt_cbc(pt, ks, iv);
  std::memcpy(chain, ct.data() + ct.size() - 16, 16);
}

void scalar_aes_decrypt(const Bytes& ct, Bytes& pt, const aes::KeySchedule& ks,
                        std::uint8_t chain[16]) {
  if (ct.empty()) return;
  std::array<std::uint8_t, 16> iv{};
  std::memcpy(iv.data(), chain, 16);
  pt = aes::decrypt_cbc(ct, ks, iv);
  std::memcpy(chain, ct.data() + ct.size() - 16, 16);
}

void scalar_des_encrypt(const Bytes& pt, Bytes& ct, const des::KeySchedule& ks,
                        std::uint8_t chain[8]) {
  if (pt.empty()) return;
  ct = des::encrypt_cbc(pt, ks, des::load_be64(chain));
  std::memcpy(chain, ct.data() + ct.size() - 8, 8);
}

void scalar_des_decrypt(const Bytes& ct, Bytes& pt, const des::KeySchedule& ks,
                        std::uint8_t chain[8]) {
  if (ct.empty()) return;
  pt = des::decrypt_cbc(ct, ks, des::load_be64(chain));
  std::memcpy(chain, ct.data() + ct.size() - 8, 8);
}

// 3DES-EDE CBC (no scalar helper in des.h; same composition SecureChannel
// uses: CBC around encrypt_block_3des / decrypt_block_3des).
void scalar_3des_encrypt(const Bytes& pt, Bytes& ct,
                         const des::TripleKeySchedule& ks,
                         std::uint8_t chain[8]) {
  if (pt.empty()) return;
  ct.resize(pt.size());
  std::uint64_t prev = des::load_be64(chain);
  for (std::size_t off = 0; off < pt.size(); off += 8) {
    const std::uint64_t x = des::load_be64(pt.data() + off) ^ prev;
    prev = des::encrypt_block_3des(x, ks);
    des::store_be64(prev, ct.data() + off);
  }
  des::store_be64(prev, chain);
}

void scalar_3des_decrypt(const Bytes& ct, Bytes& pt,
                         const des::TripleKeySchedule& ks,
                         std::uint8_t chain[8]) {
  if (ct.empty()) return;
  pt.resize(ct.size());
  std::uint64_t prev = des::load_be64(chain);
  for (std::size_t off = 0; off < ct.size(); off += 8) {
    const std::uint64_t y = des::load_be64(ct.data() + off);
    des::store_be64(des::decrypt_block_3des(y, ks) ^ prev, pt.data() + off);
    prev = y;
  }
  des::store_be64(prev, chain);
}

// ---------------------------------------------------------------------------
// AES differential sweep: random keys (128/192/256), random IVs, record
// lengths 0..(lanes + 3) blocks, across every lane width.

struct AesStream {
  aes::KeySchedule ks;
  Bytes pt;
  std::array<std::uint8_t, 16> iv;
};

std::vector<AesStream> random_aes_streams(Rng& rng, std::size_t n,
                                          std::size_t max_blocks) {
  static const std::size_t kKeyLens[3] = {16, 24, 32};
  std::vector<AesStream> s(n);
  for (auto& st : s) {
    st.ks = aes::key_schedule(rng.bytes(kKeyLens[rng.below(3)]));
    st.pt = rng.bytes(16 * rng.below(max_blocks + 1));
    const Bytes iv = rng.bytes(16);
    std::memcpy(st.iv.data(), iv.data(), 16);
  }
  return s;
}

TEST(CryptoBatch, AesDifferentialAllLaneWidths) {
  Rng rng(811);
  for (unsigned lanes : {1u, 2u, 4u, 8u}) {
    for (int iter = 0; iter < 8; ++iter) {
      const std::size_t n = 1 + rng.below(2 * lanes + 3);
      auto streams = random_aes_streams(rng, n, lanes + 3);

      // Scalar reference.
      std::vector<Bytes> want_ct(n);
      std::vector<std::array<std::uint8_t, 16>> want_chain(n);
      for (std::size_t i = 0; i < n; ++i) {
        want_chain[i] = streams[i].iv;
        scalar_aes_encrypt(streams[i].pt, want_ct[i], streams[i].ks,
                           want_chain[i].data());
      }

      // Batched encrypt.
      std::vector<Bytes> got_ct(n);
      std::vector<std::array<std::uint8_t, 16>> got_chain(n);
      std::vector<aes_mb::CbcLane> ls(n);
      for (std::size_t i = 0; i < n; ++i) {
        got_ct[i].resize(streams[i].pt.size());
        got_chain[i] = streams[i].iv;
        ls[i] = {&streams[i].ks, streams[i].pt.data(), got_ct[i].data(),
                 streams[i].pt.size() / 16, got_chain[i].data()};
      }
      aes_mb::encrypt_cbc(ls.data(), n, lanes);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got_ct[i], want_ct[i]) << "lanes=" << lanes << " i=" << i;
        EXPECT_EQ(got_chain[i], want_chain[i]) << "lanes=" << lanes;
      }

      // Batched decrypt must invert back to the plaintext with the same
      // residue the scalar decrypt reports.
      std::vector<Bytes> got_pt(n);
      for (std::size_t i = 0; i < n; ++i) {
        got_pt[i].resize(want_ct[i].size());
        got_chain[i] = streams[i].iv;
        ls[i] = {&streams[i].ks, want_ct[i].data(), got_pt[i].data(),
                 want_ct[i].size() / 16, got_chain[i].data()};
      }
      aes_mb::decrypt_cbc(ls.data(), n, lanes);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got_pt[i], streams[i].pt) << "lanes=" << lanes << " i=" << i;
        EXPECT_EQ(got_chain[i], want_chain[i]) << "lanes=" << lanes;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DES / 3DES differential sweep, with single and triple lanes mixed in the
// same call (the kernel partitions them internally).

struct DesStream {
  des::KeySchedule ks;
  des::TripleKeySchedule ks3;
  bool triple = false;
  Bytes pt;
  std::array<std::uint8_t, 8> iv;
};

std::vector<DesStream> random_des_streams(Rng& rng, std::size_t n,
                                          std::size_t max_blocks) {
  std::vector<DesStream> s(n);
  for (auto& st : s) {
    st.triple = rng.below(2) != 0;
    st.ks = des::key_schedule(rng.next_u64());
    st.ks3 = des::triple_key_schedule(rng.next_u64(), rng.next_u64(),
                                      rng.next_u64());
    st.pt = rng.bytes(8 * rng.below(max_blocks + 1));
    const Bytes iv = rng.bytes(8);
    std::memcpy(st.iv.data(), iv.data(), 8);
  }
  return s;
}

TEST(CryptoBatch, DesDifferentialAllLaneWidths) {
  Rng rng(823);
  for (unsigned lanes : {1u, 2u, 4u, 8u}) {
    for (int iter = 0; iter < 8; ++iter) {
      const std::size_t n = 1 + rng.below(2 * lanes + 3);
      auto streams = random_des_streams(rng, n, lanes + 3);

      std::vector<Bytes> want_ct(n);
      std::vector<std::array<std::uint8_t, 8>> want_chain(n);
      for (std::size_t i = 0; i < n; ++i) {
        want_chain[i] = streams[i].iv;
        if (streams[i].triple) {
          scalar_3des_encrypt(streams[i].pt, want_ct[i], streams[i].ks3,
                              want_chain[i].data());
        } else {
          scalar_des_encrypt(streams[i].pt, want_ct[i], streams[i].ks,
                             want_chain[i].data());
        }
      }

      std::vector<Bytes> got_ct(n);
      std::vector<std::array<std::uint8_t, 8>> got_chain(n);
      std::vector<des_mb::CbcLane> ls(n);
      for (std::size_t i = 0; i < n; ++i) {
        got_ct[i].resize(streams[i].pt.size());
        got_chain[i] = streams[i].iv;
        ls[i].ks = streams[i].triple ? nullptr : &streams[i].ks;
        ls[i].ks3 = streams[i].triple ? &streams[i].ks3 : nullptr;
        ls[i].in = streams[i].pt.data();
        ls[i].out = got_ct[i].data();
        ls[i].blocks = streams[i].pt.size() / 8;
        ls[i].chain = got_chain[i].data();
      }
      des_mb::encrypt_cbc(ls.data(), n, lanes);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got_ct[i], want_ct[i])
            << "lanes=" << lanes << " i=" << i
            << (streams[i].triple ? " 3des" : " des");
        EXPECT_EQ(got_chain[i], want_chain[i]) << "lanes=" << lanes;
      }

      std::vector<Bytes> got_pt(n);
      for (std::size_t i = 0; i < n; ++i) {
        got_pt[i].resize(want_ct[i].size());
        got_chain[i] = streams[i].iv;
        ls[i].in = want_ct[i].data();
        ls[i].out = got_pt[i].data();
        ls[i].blocks = want_ct[i].size() / 8;
        ls[i].chain = got_chain[i].data();
      }
      des_mb::decrypt_cbc(ls.data(), n, lanes);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got_pt[i], streams[i].pt) << "lanes=" << lanes << " i=" << i;
        EXPECT_EQ(got_chain[i], want_chain[i]) << "lanes=" << lanes;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Compile-time template entry points, ragged batches (fewer records than
// lanes) and in-place operation.

TEST(CryptoBatch, TemplateEntryPointsRaggedAndInPlace) {
  Rng rng(829);
  auto streams = random_aes_streams(rng, 3, 5);  // 3 records into 8 lanes
  std::vector<Bytes> want_ct(3);
  std::vector<std::array<std::uint8_t, 16>> want_chain(3);
  for (std::size_t i = 0; i < 3; ++i) {
    want_chain[i] = streams[i].iv;
    scalar_aes_encrypt(streams[i].pt, want_ct[i], streams[i].ks,
                       want_chain[i].data());
  }
  // In place: encrypt the plaintext buffer itself through the <8> template.
  std::vector<Bytes> buf(3);
  std::vector<std::array<std::uint8_t, 16>> chain(3);
  std::vector<aes_mb::CbcLane> ls(3);
  for (std::size_t i = 0; i < 3; ++i) {
    buf[i] = streams[i].pt;
    chain[i] = streams[i].iv;
    ls[i] = {&streams[i].ks, buf[i].data(), buf[i].data(), buf[i].size() / 16,
             chain[i].data()};
  }
  aes_mb::encrypt_cbc<8>(ls.data(), 3);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(buf[i], want_ct[i]) << i;
    EXPECT_EQ(chain[i], want_chain[i]) << i;
  }
  // And back, in place, through the <4> template.
  for (std::size_t i = 0; i < 3; ++i) {
    chain[i] = streams[i].iv;
    ls[i] = {&streams[i].ks, buf[i].data(), buf[i].data(), buf[i].size() / 16,
             chain[i].data()};
  }
  aes_mb::decrypt_cbc<4>(ls.data(), 3);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(buf[i], streams[i].pt) << i;
}

TEST(CryptoBatch, DesTemplateInPlaceRoundTrip) {
  Rng rng(839);
  auto streams = random_des_streams(rng, 5, 6);
  std::vector<Bytes> buf(5);
  std::vector<std::array<std::uint8_t, 8>> chain(5);
  std::vector<des_mb::CbcLane> ls(5);
  auto fill = [&](bool use_ct) {
    for (std::size_t i = 0; i < 5; ++i) {
      if (!use_ct) buf[i] = streams[i].pt;
      chain[i] = streams[i].iv;
      ls[i].ks = streams[i].triple ? nullptr : &streams[i].ks;
      ls[i].ks3 = streams[i].triple ? &streams[i].ks3 : nullptr;
      ls[i].in = buf[i].data();
      ls[i].out = buf[i].data();
      ls[i].blocks = buf[i].size() / 8;
      ls[i].chain = chain[i].data();
    }
  };
  fill(false);
  des_mb::encrypt_cbc<8>(ls.data(), 5);
  fill(true);
  des_mb::decrypt_cbc<2>(ls.data(), 5);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(buf[i], streams[i].pt) << i;
}

// ---------------------------------------------------------------------------
// Per-record independent keystream/IV state: clone streams that share a key
// (and then everything except one byte) and prove no lane bleeds into its
// neighbor — every lane must match its own scalar run exactly.

TEST(CryptoBatch, NoLaneBleedWithSharedKeys) {
  Rng rng(853);
  const auto key = rng.bytes(16);
  const aes::KeySchedule ks = aes::key_schedule(key);
  const std::size_t n = 8;
  std::vector<Bytes> pt(n);
  std::vector<std::array<std::uint8_t, 16>> iv(n);
  for (std::size_t i = 0; i < n; ++i) {
    pt[i] = rng.bytes(64);
    const Bytes r = rng.bytes(16);
    std::memcpy(iv[i].data(), r.data(), 16);
  }
  // Lanes 6 and 7: identical to lane 0 except one plaintext byte / IV byte.
  pt[6] = pt[0];
  iv[6] = iv[0];
  pt[6][17] ^= 0x40;
  pt[7] = pt[0];
  iv[7] = iv[0];
  iv[7][3] ^= 0x01;

  std::vector<Bytes> want(n), got(n);
  std::vector<std::array<std::uint8_t, 16>> chain(n);
  std::vector<aes_mb::CbcLane> ls(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto c = iv[i];
    scalar_aes_encrypt(pt[i], want[i], ks, c.data());
    got[i].resize(pt[i].size());
    chain[i] = iv[i];
    ls[i] = {&ks, pt[i].data(), got[i].data(), pt[i].size() / 16,
             chain[i].data()};
  }
  aes_mb::encrypt_cbc(ls.data(), n, 8);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(got[i], want[i]) << i;
  // The twin lanes must differ from lane 0 from their first divergent
  // block onward (CBC avalanche) — i.e. the kernel did not collapse them.
  EXPECT_NE(got[6], got[0]);
  EXPECT_NE(got[7], got[0]);
}

// ---------------------------------------------------------------------------
// Dispatcher: multi-record residue chaining across interleaved sessions, and
// grouping of mixed ciphers/directions in one flush.

TEST(CryptoBatch, DispatcherChainsRecordsLikeScalarSessions) {
  Rng rng(857);
  for (unsigned lanes : {1u, 4u, 8u}) {
    crypto::BatchDispatcher disp(lanes);
    EXPECT_EQ(disp.lanes(), lanes);

    // Three AES sessions and two 3DES sessions, four records each,
    // interleaved round-robin like the shard pump would.
    const std::size_t kAesSessions = 3, kDesSessions = 2, kRecords = 4;
    std::vector<aes::KeySchedule> aks(kAesSessions);
    std::vector<std::array<std::uint8_t, 16>> achain(kAesSessions),
        achain_ref(kAesSessions);
    std::vector<std::vector<Bytes>> apt(kAesSessions), act(kAesSessions),
        act_ref(kAesSessions);
    for (std::size_t s = 0; s < kAesSessions; ++s) {
      aks[s] = aes::key_schedule(rng.bytes(16));
      const Bytes iv = rng.bytes(16);
      std::memcpy(achain[s].data(), iv.data(), 16);
      achain_ref[s] = achain[s];
      apt[s].resize(kRecords);
      act[s].resize(kRecords);
      act_ref[s].resize(kRecords);
      for (auto& r : apt[s]) r = rng.bytes(16 * (1 + rng.below(4)));
    }
    std::vector<des::TripleKeySchedule> dks(kDesSessions);
    std::vector<std::array<std::uint8_t, 8>> dchain(kDesSessions),
        dchain_ref(kDesSessions);
    std::vector<std::vector<Bytes>> dpt(kDesSessions), dct(kDesSessions),
        dct_ref(kDesSessions);
    for (std::size_t s = 0; s < kDesSessions; ++s) {
      dks[s] = des::triple_key_schedule(rng.next_u64(), rng.next_u64(),
                                        rng.next_u64());
      const Bytes iv = rng.bytes(8);
      std::memcpy(dchain[s].data(), iv.data(), 8);
      dchain_ref[s] = dchain[s];
      dpt[s].resize(kRecords);
      dct[s].resize(kRecords);
      dct_ref[s].resize(kRecords);
      for (auto& r : dpt[s]) r = rng.bytes(8 * (1 + rng.below(5)));
    }

    // Scalar reference: per-session record sequence with residue chaining.
    for (std::size_t s = 0; s < kAesSessions; ++s) {
      for (std::size_t r = 0; r < kRecords; ++r) {
        scalar_aes_encrypt(apt[s][r], act_ref[s][r], aks[s],
                           achain_ref[s].data());
      }
    }
    for (std::size_t s = 0; s < kDesSessions; ++s) {
      for (std::size_t r = 0; r < kRecords; ++r) {
        scalar_3des_encrypt(dpt[s][r], dct_ref[s][r], dks[s],
                            dchain_ref[s].data());
      }
    }

    // Batched: one flush per record round, sessions interleaved inside it.
    for (std::size_t r = 0; r < kRecords; ++r) {
      for (std::size_t s = 0; s < kAesSessions; ++s) {
        act[s][r].resize(apt[s][r].size());
        crypto::BatchJob job;
        job.cipher = crypto::BatchCipher::kAes;
        job.dir = crypto::BatchDir::kEncrypt;
        job.key = &aks[s];
        job.in = apt[s][r].data();
        job.out = act[s][r].data();
        job.bytes = apt[s][r].size();
        job.chain = achain[s].data();
        disp.submit(job);
      }
      for (std::size_t s = 0; s < kDesSessions; ++s) {
        dct[s][r].resize(dpt[s][r].size());
        crypto::BatchJob job;
        job.cipher = crypto::BatchCipher::kTripleDes;
        job.dir = crypto::BatchDir::kEncrypt;
        job.key = &dks[s];
        job.in = dpt[s][r].data();
        job.out = dct[s][r].data();
        job.bytes = dpt[s][r].size();
        job.chain = dchain[s].data();
        disp.submit(job);
      }
      EXPECT_EQ(disp.pending(), kAesSessions + kDesSessions);
      disp.flush();
      EXPECT_EQ(disp.pending(), 0u);
    }

    for (std::size_t s = 0; s < kAesSessions; ++s) {
      EXPECT_EQ(act[s], act_ref[s]) << "lanes=" << lanes << " aes s=" << s;
      EXPECT_EQ(achain[s], achain_ref[s]);
    }
    for (std::size_t s = 0; s < kDesSessions; ++s) {
      EXPECT_EQ(dct[s], dct_ref[s]) << "lanes=" << lanes << " 3des s=" << s;
      EXPECT_EQ(dchain[s], dchain_ref[s]);
    }
    EXPECT_EQ(disp.jobs_submitted(),
              kRecords * (kAesSessions + kDesSessions));
    EXPECT_EQ(disp.flushes(), kRecords);
  }
}

// ---------------------------------------------------------------------------
// Typed negative paths: the ragged-edge hazard class the issue calls out.

TEST(CryptoBatch, TypedErrorsOnHazardInputs) {
  const aes::KeySchedule ks = aes::key_schedule(Bytes(16, 0x5a));
  std::uint8_t buf[32] = {0};
  std::uint8_t chain[16] = {0};
  crypto::BatchJob good;
  good.cipher = crypto::BatchCipher::kAes;
  good.dir = crypto::BatchDir::kEncrypt;
  good.key = &ks;
  good.in = buf;
  good.out = buf;
  good.bytes = 32;
  good.chain = chain;

  // Empty group.
  try {
    crypto::run_batch_group(crypto::BatchCipher::kAes,
                            crypto::BatchDir::kEncrypt, &good, 0, 4);
    FAIL() << "empty group accepted";
  } catch (const crypto::BatchError& e) {
    EXPECT_EQ(e.kind(), crypto::BatchErrorKind::kEmptyBatch);
  }

  // Mixed cipher in one group.
  crypto::BatchJob jobs[2] = {good, good};
  jobs[1].cipher = crypto::BatchCipher::kDes;
  try {
    crypto::run_batch_group(crypto::BatchCipher::kAes,
                            crypto::BatchDir::kEncrypt, jobs, 2, 4);
    FAIL() << "mixed-cipher group accepted";
  } catch (const crypto::BatchError& e) {
    EXPECT_EQ(e.kind(), crypto::BatchErrorKind::kMixedCipher);
  }
  // Mixed direction is the same hazard.
  jobs[1] = good;
  jobs[1].dir = crypto::BatchDir::kDecrypt;
  try {
    crypto::run_batch_group(crypto::BatchCipher::kAes,
                            crypto::BatchDir::kEncrypt, jobs, 2, 4);
    FAIL() << "mixed-direction group accepted";
  } catch (const crypto::BatchError& e) {
    EXPECT_EQ(e.kind(), crypto::BatchErrorKind::kMixedCipher);
  }

  // Zero-length and ragged (non-block-multiple) jobs.
  crypto::BatchDispatcher disp(8);
  crypto::BatchJob bad = good;
  bad.bytes = 0;
  try {
    disp.submit(bad);
    FAIL() << "zero-length job accepted";
  } catch (const crypto::BatchError& e) {
    EXPECT_EQ(e.kind(), crypto::BatchErrorKind::kBadLength);
  }
  bad.bytes = 17;
  try {
    disp.submit(bad);
    FAIL() << "ragged-length job accepted";
  } catch (const crypto::BatchError& e) {
    EXPECT_EQ(e.kind(), crypto::BatchErrorKind::kBadLength);
  }
  EXPECT_EQ(disp.pending(), 0u);  // failed submits leave no residue

  // Null fields.
  bad = good;
  bad.chain = nullptr;
  try {
    disp.submit(bad);
    FAIL() << "null-chain job accepted";
  } catch (const crypto::BatchError& e) {
    EXPECT_EQ(e.kind(), crypto::BatchErrorKind::kBadJob);
  }

  // Lane-width range, on the dispatcher and the group runner.
  for (unsigned lanes : {0u, 9u, 64u}) {
    try {
      crypto::BatchDispatcher d(lanes);
      FAIL() << "lanes=" << lanes << " accepted";
    } catch (const crypto::BatchError& e) {
      EXPECT_EQ(e.kind(), crypto::BatchErrorKind::kBadLanes);
    }
    try {
      crypto::run_batch_group(crypto::BatchCipher::kAes,
                              crypto::BatchDir::kEncrypt, &good, 1, lanes);
      FAIL() << "group lanes=" << lanes << " accepted";
    } catch (const crypto::BatchError& e) {
      EXPECT_EQ(e.kind(), crypto::BatchErrorKind::kBadLanes);
    }
  }

  // The kernels' own validation (invalid_argument, per header contract).
  aes_mb::CbcLane lane{&ks, buf, buf, 2, nullptr};
  EXPECT_THROW(aes_mb::encrypt_cbc(&lane, 1, 4), std::invalid_argument);
  EXPECT_THROW(aes_mb::encrypt_cbc(&lane, 1, 0), std::invalid_argument);
  des_mb::CbcLane dlane;
  dlane.blocks = 1;
  dlane.in = buf;
  dlane.out = buf;
  dlane.chain = chain;  // both key schedules null
  EXPECT_THROW(des_mb::encrypt_cbc(&dlane, 1, 4), std::invalid_argument);
}

// Cross laws: encrypt-batched -> decrypt-scalar (and the DES variants) —
// the scalar decoder must accept the batched ciphertext stream unchanged.
TEST(CryptoBatch, ScalarDecryptAcceptsBatchedCiphertext) {
  Rng rng(863);
  auto astreams = random_aes_streams(rng, 6, 5);
  std::vector<Bytes> ct(6);
  std::vector<std::array<std::uint8_t, 16>> chain(6);
  std::vector<aes_mb::CbcLane> ls(6);
  for (std::size_t i = 0; i < 6; ++i) {
    ct[i].resize(astreams[i].pt.size());
    chain[i] = astreams[i].iv;
    ls[i] = {&astreams[i].ks, astreams[i].pt.data(), ct[i].data(),
             astreams[i].pt.size() / 16, chain[i].data()};
  }
  aes_mb::encrypt_cbc(ls.data(), 6, 8);
  for (std::size_t i = 0; i < 6; ++i) {
    Bytes pt;
    auto c = astreams[i].iv;
    scalar_aes_decrypt(ct[i], pt, astreams[i].ks, c.data());
    EXPECT_EQ(pt, astreams[i].pt) << i;
    EXPECT_EQ(c, chain[i]) << i;  // scalar and batched residues agree
  }

  auto dstreams = random_des_streams(rng, 6, 6);
  std::vector<Bytes> dct(6);
  std::vector<std::array<std::uint8_t, 8>> dchain(6);
  std::vector<des_mb::CbcLane> dls(6);
  for (std::size_t i = 0; i < 6; ++i) {
    dct[i].resize(dstreams[i].pt.size());
    dchain[i] = dstreams[i].iv;
    dls[i].ks = dstreams[i].triple ? nullptr : &dstreams[i].ks;
    dls[i].ks3 = dstreams[i].triple ? &dstreams[i].ks3 : nullptr;
    dls[i].in = dstreams[i].pt.data();
    dls[i].out = dct[i].data();
    dls[i].blocks = dstreams[i].pt.size() / 8;
    dls[i].chain = dchain[i].data();
  }
  des_mb::encrypt_cbc(dls.data(), 6, 4);
  for (std::size_t i = 0; i < 6; ++i) {
    Bytes pt;
    auto c = dstreams[i].iv;
    if (dstreams[i].triple) {
      scalar_3des_decrypt(dct[i], pt, dstreams[i].ks3, c.data());
    } else {
      scalar_des_decrypt(dct[i], pt, dstreams[i].ks, c.data());
    }
    EXPECT_EQ(pt, dstreams[i].pt) << i;
    EXPECT_EQ(c, dchain[i]) << i;
  }
}

// Zero-block lanes are legal no-ops and must not disturb their neighbors.
TEST(CryptoBatch, ZeroBlockLanesAreNoOps) {
  Rng rng(859);
  auto streams = random_aes_streams(rng, 4, 4);
  streams[1].pt.clear();  // dead lane in the middle of the group
  std::vector<Bytes> want(4), got(4);
  std::vector<std::array<std::uint8_t, 16>> chain(4);
  std::vector<aes_mb::CbcLane> ls(4);
  for (std::size_t i = 0; i < 4; ++i) {
    auto c = streams[i].iv;
    scalar_aes_encrypt(streams[i].pt, want[i], streams[i].ks, c.data());
    got[i].resize(streams[i].pt.size());
    chain[i] = streams[i].iv;
    ls[i] = {&streams[i].ks, streams[i].pt.data(), got[i].data(),
             streams[i].pt.size() / 16, chain[i].data()};
  }
  aes_mb::encrypt_cbc(ls.data(), 4, 4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(got[i], want[i]) << i;
  EXPECT_EQ(chain[1], streams[1].iv);  // untouched IV on the dead lane
}

// ---------------------------------------------------------------------------
// SecureChannel two-phase (submit/flush/complete) against scalar seal/open:
// identical records, payloads, residues, sequence numbers and error
// behavior — the contract the server's staged pump depends on.

struct ChannelPair {
  ssl::SecureChannel scalar;
  ssl::SecureChannel batched;
};

ChannelPair make_channels(ssl::Cipher cipher, Rng& rng) {
  const ssl::CipherProfile prof = ssl::cipher_profile(cipher);
  const Bytes key = rng.bytes(prof.key_len);
  const Bytes mac = rng.bytes(20);
  const Bytes iv = rng.bytes(prof.iv_len);
  return {ssl::SecureChannel(cipher, key, mac, iv),
          ssl::SecureChannel(cipher, key, mac, iv)};
}

TEST(CryptoBatch, SecureChannelTwoPhaseMatchesScalar) {
  Rng rng(877);
  for (ssl::Cipher cipher : {ssl::Cipher::kTripleDesCbc, ssl::Cipher::kAes128Cbc,
                             ssl::Cipher::kRc4}) {
    for (unsigned lanes : {1u, 8u}) {
      auto ch = make_channels(cipher, rng);
      crypto::BatchDispatcher disp(lanes);
      for (int rec = 0; rec < 12; ++rec) {
        const Bytes payload = rng.bytes(1 + rng.below(200));
        const Bytes want_wire = ch.scalar.seal(payload);
        auto p = ch.batched.seal_submit(payload, disp);
        disp.flush();
        const Bytes got_wire = ch.batched.seal_complete(std::move(p));
        ASSERT_EQ(got_wire, want_wire)
            << ssl::to_string(cipher) << " lanes=" << lanes << " rec=" << rec;

        const Bytes want_pt = ch.scalar.open(want_wire);
        auto q = ch.batched.open_submit(got_wire, disp);
        disp.flush();
        const Bytes got_pt = ch.batched.open_complete(std::move(q));
        EXPECT_EQ(got_pt, want_pt);
        EXPECT_EQ(got_pt, payload);
      }
    }
  }
}

// Error paths must throw the same message at complete time as scalar open
// throws inline, and leave the channel in the same state afterwards (the
// repair ladder reseals on the same channel after a failure).
TEST(CryptoBatch, SecureChannelTwoPhaseErrorParity) {
  Rng rng(881);
  for (ssl::Cipher cipher : {ssl::Cipher::kTripleDesCbc, ssl::Cipher::kAes128Cbc}) {
    auto ch = make_channels(cipher, rng);
    crypto::BatchDispatcher disp(8);

    auto expect_same_error = [&](const Bytes& wire) {
      std::string want_err, got_err;
      try {
        ch.scalar.open(wire);
      } catch (const std::runtime_error& e) {
        want_err = e.what();
      }
      auto p = ch.batched.open_submit(wire, disp);
      disp.flush();
      try {
        ch.batched.open_complete(std::move(p));
      } catch (const std::runtime_error& e) {
        got_err = e.what();
      }
      EXPECT_FALSE(want_err.empty());
      EXPECT_EQ(got_err, want_err);
    };

    // Bad record length (not a block multiple): thrown without consuming
    // sequence numbers or chaining state on either path.
    expect_same_error(Bytes(13, 0xab));
    // Empty record.
    expect_same_error(Bytes{});

    // Those errors left both channels untouched, so a fresh record sealed
    // on each still round-trips and the wires still match.
    {
      const Bytes payload = rng.bytes(80);
      const Bytes wire_s = ch.scalar.seal(payload);
      auto p = ch.batched.seal_submit(payload, disp);
      disp.flush();
      const Bytes wire_b = ch.batched.seal_complete(std::move(p));
      ASSERT_EQ(wire_s, wire_b) << ssl::to_string(cipher);
      const Bytes pt_s = ch.scalar.open(wire_s);
      auto q = ch.batched.open_submit(wire_b, disp);
      disp.flush();
      EXPECT_EQ(ch.batched.open_complete(std::move(q)), pt_s);
    }

    // Tampered record: MAC failure (or padding failure, depending on where
    // the flip lands) — both channels must agree.  A tampered CBC record
    // legitimately desyncs iv_dec (the repair ladder rekeys for exactly
    // this reason), so both paths must also agree on the *next* record:
    // same garbled-state error, not just the same first error.
    {
      const Bytes payload = rng.bytes(64);
      Bytes wire_s = ch.scalar.seal(payload);
      auto p = ch.batched.seal_submit(payload, disp);
      disp.flush();
      Bytes wire_b = ch.batched.seal_complete(std::move(p));
      ASSERT_EQ(wire_s, wire_b);
      wire_s.back() ^= 0x04;
      expect_same_error(wire_s);
      const Bytes next = ch.scalar.seal(payload);
      auto p2 = ch.batched.seal_submit(payload, disp);
      disp.flush();
      ASSERT_EQ(ch.batched.seal_complete(std::move(p2)), next);
      expect_same_error(next);
    }
  }
}

}  // namespace
}  // namespace wsp
