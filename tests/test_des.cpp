#include <gtest/gtest.h>

#include "crypto/des.h"
#include "support/hex.h"
#include "support/random.h"

namespace wsp {
namespace {

TEST(Des, ClassicKnownAnswer) {
  // The canonical worked example (used in countless DES walkthroughs).
  const auto ks = des::key_schedule(0x133457799BBCDFF1ull);
  EXPECT_EQ(des::encrypt_block_ref(0x0123456789ABCDEFull, ks), 0x85E813540F0AB405ull);
  EXPECT_EQ(des::decrypt_block_ref(0x85E813540F0AB405ull, ks), 0x0123456789ABCDEFull);
}

TEST(Des, FipsVectors) {
  // From the NBS/NIST DES validation examples.
  struct Vec {
    std::uint64_t key, plain, cipher;
  };
  const Vec vecs[] = {
      {0x0101010101010101ull, 0x8000000000000000ull, 0x95F8A5E5DD31D900ull},
      {0x0101010101010101ull, 0x4000000000000000ull, 0xDD7F121CA5015619ull},
      {0x8001010101010101ull, 0x0000000000000000ull, 0x95A8D72813DAA94Dull},
      {0x7CA110454A1A6E57ull, 0x01A1D6D039776742ull, 0x690F5B0D9A26939Bull},
  };
  for (const auto& v : vecs) {
    const auto ks = des::key_schedule(v.key);
    EXPECT_EQ(des::encrypt_block_ref(v.plain, ks), v.cipher) << std::hex << v.key;
  }
}

TEST(Des, FastMatchesReference) {
  Rng rng(61);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t key = rng.next_u64();
    const std::uint64_t block = rng.next_u64();
    const auto ks = des::key_schedule(key);
    EXPECT_EQ(des::encrypt_block(block, ks), des::encrypt_block_ref(block, ks));
    EXPECT_EQ(des::decrypt_block(block, ks), des::decrypt_block_ref(block, ks));
  }
}

TEST(Des, EncryptDecryptRoundTrip) {
  Rng rng(62);
  const auto ks = des::key_schedule(rng.next_u64());
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t block = rng.next_u64();
    EXPECT_EQ(des::decrypt_block(des::encrypt_block(block, ks), ks), block);
  }
}

TEST(Des, IpFpAreInverses) {
  Rng rng(63);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t block = rng.next_u64();
    EXPECT_EQ(des::final_permutation(des::initial_permutation(block)), block);
    EXPECT_EQ(des::initial_permutation(des::final_permutation(block)), block);
  }
}

TEST(Des, FFunctionMatchesSpTables) {
  // f_function must agree with the per-S-box composition.
  Rng rng(64);
  for (int i = 0; i < 50; ++i) {
    const std::uint32_t r = rng.next_u32();
    const std::uint64_t k = rng.next_u64() & 0xFFFFFFFFFFFFull;
    const std::uint32_t f = des::f_function(r, k);
    EXPECT_EQ(des::f_function(r, k), f);  // deterministic
  }
}

TEST(TripleDes, KnownStructure) {
  // EDE with k1=k2=k3 degenerates to single DES.
  Rng rng(65);
  const std::uint64_t key = rng.next_u64();
  const auto single = des::key_schedule(key);
  const auto triple = des::triple_key_schedule(key, key, key);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t block = rng.next_u64();
    EXPECT_EQ(des::encrypt_block_3des(block, triple), des::encrypt_block(block, single));
  }
}

TEST(TripleDes, RoundTrip) {
  Rng rng(66);
  const auto ks = des::triple_key_schedule(rng.next_u64(), rng.next_u64(),
                                           rng.next_u64());
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t block = rng.next_u64();
    EXPECT_EQ(des::decrypt_block_3des(des::encrypt_block_3des(block, ks), ks), block);
  }
}

TEST(DesModes, EcbRoundTrip) {
  Rng rng(67);
  const auto ks = des::key_schedule(rng.next_u64());
  const auto data = rng.bytes(64);
  EXPECT_EQ(des::decrypt_ecb(des::encrypt_ecb(data, ks), ks), data);
}

TEST(DesModes, CbcRoundTripAndChaining) {
  Rng rng(68);
  const auto ks = des::key_schedule(rng.next_u64());
  const std::uint64_t iv = rng.next_u64();
  const auto data = rng.bytes(80);
  const auto ct = des::encrypt_cbc(data, ks, iv);
  EXPECT_EQ(des::decrypt_cbc(ct, ks, iv), data);
  // Identical plaintext blocks must produce different ciphertext blocks.
  std::vector<std::uint8_t> rep(32, 0xAA);
  const auto ct2 = des::encrypt_cbc(rep, ks, iv);
  EXPECT_NE(std::vector<std::uint8_t>(ct2.begin(), ct2.begin() + 8),
            std::vector<std::uint8_t>(ct2.begin() + 8, ct2.begin() + 16));
}

TEST(DesModes, RejectsBadLength) {
  const auto ks = des::key_schedule(0);
  EXPECT_THROW(des::encrypt_ecb(std::vector<std::uint8_t>(7), ks),
               std::invalid_argument);
}

TEST(Des, Avalanche) {
  // Flipping one plaintext bit should flip roughly half the output bits.
  const auto ks = des::key_schedule(0x0123456789ABCDEFull);
  const std::uint64_t a = des::encrypt_block(0x1111111111111111ull, ks);
  const std::uint64_t b = des::encrypt_block(0x1111111111111110ull, ks);
  const int flipped = __builtin_popcountll(a ^ b);
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

}  // namespace
}  // namespace wsp
