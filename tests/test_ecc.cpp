#include <gtest/gtest.h>

#include "crypto/ecc.h"
#include "mp/prime.h"

namespace wsp {
namespace {

using namespace wsp::ecc;

const Curve& curve() { return secp192r1(); }

Point g() { return Point::make(curve().gx, curve().gy); }

TEST(Ecc, GeneratorIsOnCurve) {
  EXPECT_TRUE(on_curve(curve(), g()));
  EXPECT_TRUE(on_curve(curve(), Point::at_infinity()));
  EXPECT_FALSE(on_curve(curve(), Point::make(Mpz(1), Mpz(1))));
}

TEST(Ecc, GroupIdentityLaws) {
  const Point inf = Point::at_infinity();
  EXPECT_EQ(add(curve(), g(), inf), g());
  EXPECT_EQ(add(curve(), inf, g()), g());
  EXPECT_EQ(add(curve(), inf, inf), inf);
  // P + (-P) = infinity.
  const Point neg = Point::make(curve().gx, (curve().p - curve().gy).mod(curve().p));
  EXPECT_TRUE(on_curve(curve(), neg));
  EXPECT_TRUE(add(curve(), g(), neg).infinity);
}

TEST(Ecc, DoubleMatchesAdd) {
  EXPECT_EQ(double_point(curve(), g()), add(curve(), g(), g()));
}

TEST(Ecc, ScalarMulIsHomomorphic) {
  Rng rng(801);
  const Mpz k1 = random_below(Mpz(1000000), rng) + Mpz(1);
  const Mpz k2 = random_below(Mpz(1000000), rng) + Mpz(1);
  const Point lhs = base_mul(curve(), k1 + k2);
  const Point rhs = add(curve(), base_mul(curve(), k1), base_mul(curve(), k2));
  EXPECT_EQ(lhs, rhs);
  EXPECT_TRUE(on_curve(curve(), lhs));
}

TEST(Ecc, ScalarMulAssociates) {
  Rng rng(802);
  const Mpz k1(12345), k2(678);
  EXPECT_EQ(scalar_mul(curve(), k1, base_mul(curve(), k2)),
            base_mul(curve(), k1 * k2));
}

TEST(Ecc, GroupOrderAnnihilates) {
  // n*G = infinity and (n-1)*G = -G: a strong check of the curve constants.
  EXPECT_TRUE(base_mul(curve(), curve().n).infinity);
  const Point almost = base_mul(curve(), curve().n - Mpz(1));
  EXPECT_EQ(almost.x, curve().gx);
  EXPECT_EQ(almost.y, (curve().p - curve().gy).mod(curve().p));
}

TEST(Ecc, ZeroScalarGivesInfinity) {
  EXPECT_TRUE(base_mul(curve(), Mpz(0)).infinity);
  EXPECT_THROW(base_mul(curve(), Mpz(-1)), std::invalid_argument);
}

TEST(Ecdh, SharedSecretAgrees) {
  Rng rng(803);
  const KeyPair alice = generate_key(curve(), rng);
  const KeyPair bob = generate_key(curve(), rng);
  EXPECT_TRUE(on_curve(curve(), alice.q));
  const Mpz s1 = ecdh_shared(curve(), alice.d, bob.q);
  const Mpz s2 = ecdh_shared(curve(), bob.d, alice.q);
  EXPECT_EQ(s1, s2);
  EXPECT_FALSE(s1.is_zero());
}

TEST(Ecdh, RejectsBadPeerPoints) {
  Rng rng(804);
  const KeyPair kp = generate_key(curve(), rng);
  EXPECT_THROW(ecdh_shared(curve(), kp.d, Point::at_infinity()),
               std::invalid_argument);
  EXPECT_THROW(ecdh_shared(curve(), kp.d, Point::make(Mpz(2), Mpz(3))),
               std::invalid_argument);
}

TEST(Ecdsa, SignVerifyRoundTrip) {
  Rng rng(805);
  const KeyPair kp = generate_key(curve(), rng);
  const std::vector<std::uint8_t> msg = {'e', 'c', 'd', 's', 'a'};
  const Signature sig = sign(curve(), kp.d, msg, rng);
  EXPECT_TRUE(verify(curve(), kp.q, msg, sig));
}

TEST(Ecdsa, TamperDetected) {
  Rng rng(806);
  const KeyPair kp = generate_key(curve(), rng);
  const std::vector<std::uint8_t> msg = {1, 2, 3, 4};
  const Signature sig = sign(curve(), kp.d, msg, rng);
  std::vector<std::uint8_t> other = msg;
  other[0] ^= 1;
  EXPECT_FALSE(verify(curve(), kp.q, other, sig));
  Signature bad = sig;
  bad.s = bad.s + Mpz(1);
  EXPECT_FALSE(verify(curve(), kp.q, msg, bad));
  EXPECT_FALSE(verify(curve(), kp.q, msg, Signature{Mpz(0), sig.s}));
}

TEST(Ecdsa, WrongKeyRejected) {
  Rng rng(807);
  const KeyPair kp1 = generate_key(curve(), rng);
  const KeyPair kp2 = generate_key(curve(), rng);
  const std::vector<std::uint8_t> msg = {9, 9};
  const Signature sig = sign(curve(), kp1.d, msg, rng);
  EXPECT_FALSE(verify(curve(), kp2.q, msg, sig));
}

TEST(Ecdsa, SignaturesAreRandomized) {
  Rng rng(808);
  const KeyPair kp = generate_key(curve(), rng);
  const std::vector<std::uint8_t> msg = {7};
  const Signature s1 = sign(curve(), kp.d, msg, rng);
  const Signature s2 = sign(curve(), kp.d, msg, rng);
  EXPECT_FALSE(s1.r == s2.r && s1.s == s2.s);
  EXPECT_TRUE(verify(curve(), kp.q, msg, s1));
  EXPECT_TRUE(verify(curve(), kp.q, msg, s2));
}

}  // namespace
}  // namespace wsp
