#include <gtest/gtest.h>

#include "crypto/elgamal.h"
#include "mp/prime.h"

namespace wsp {
namespace {

const elgamal::PrivateKey& test_key() {
  static const elgamal::PrivateKey key = [] {
    Rng rng(91);
    return elgamal::generate_key(256, rng);
  }();
  return key;
}

TEST(ElGamal, EncryptDecryptRoundTrip) {
  const auto& key = test_key();
  ModexpEngine engine{ModexpConfig{}};
  Rng rng(92);
  for (int i = 0; i < 10; ++i) {
    const Mpz m = random_below(key.pub.p - Mpz(1), rng) + Mpz(1);
    const auto ct = elgamal::encrypt(m, key.pub, engine, rng);
    EXPECT_EQ(elgamal::decrypt(ct, key, engine), m);
  }
}

TEST(ElGamal, CiphertextIsRandomized) {
  const auto& key = test_key();
  ModexpEngine engine{ModexpConfig{}};
  Rng rng(93);
  const Mpz m(42);
  const auto c1 = elgamal::encrypt(m, key.pub, engine, rng);
  const auto c2 = elgamal::encrypt(m, key.pub, engine, rng);
  EXPECT_NE(c1.c1, c2.c1);
  EXPECT_NE(c1.c2, c2.c2);
}

TEST(ElGamal, RejectsOutOfRangeMessage) {
  const auto& key = test_key();
  ModexpEngine engine{ModexpConfig{}};
  Rng rng(94);
  EXPECT_THROW(elgamal::encrypt(Mpz(0), key.pub, engine, rng), std::invalid_argument);
  EXPECT_THROW(elgamal::encrypt(key.pub.p, key.pub, engine, rng), std::invalid_argument);
}

TEST(ElGamal, PublicKeyConsistent) {
  const auto& key = test_key();
  ModexpEngine engine{ModexpConfig{}};
  EXPECT_EQ(engine.powm(key.pub.g, key.x, key.pub.p), key.pub.y);
}

}  // namespace
}  // namespace wsp
