// Algorithm design-space exploration: macro-model estimates across the 450
// configurations, ranking sanity, and cross-validation against the ISS.
#include <gtest/gtest.h>

#include <stdexcept>

#include "explore/space.h"
#include "macromodel/characterize.h"

namespace wsp {
namespace {

using explore::estimate_config;
using explore::make_rsa_workload;
using explore::RsaWorkload;

const macromodel::MacroModelSet& models() {
  static const macromodel::MacroModelSet set = [] {
    kernels::Machine machine = kernels::make_mpn_machine();
    macromodel::CharacterizeOptions options;
    options.sizes = {2, 4, 8, 16, 24, 32};
    return macromodel::characterize_mpn(machine, options);
  }();
  return set;
}

const RsaWorkload& workload() {
  static const RsaWorkload w = [] {
    Rng rng(411);
    auto wl = make_rsa_workload(256, rng);
    wl.repetitions = 2;
    return wl;
  }();
  return w;
}

TEST(Explore, RejectsNonPositiveRepetitions) {
  // repetitions <= 0 used to divide by zero (or negate the average) and
  // return garbage estimates; it must be rejected loudly.
  RsaWorkload bad = workload();
  bad.repetitions = 0;
  EXPECT_THROW(estimate_config(ModexpConfig{}, bad, models()),
               std::invalid_argument);
  bad.repetitions = -3;
  EXPECT_THROW(estimate_config(ModexpConfig{}, bad, models()),
               std::invalid_argument);
  EXPECT_THROW(explore::explore_modexp_space(bad, models()),
               std::invalid_argument);
}

TEST(Explore, EstimatesArePositiveAndFinite) {
  const auto est = estimate_config(ModexpConfig{}, workload(), models());
  EXPECT_GT(est.avg_cycles, 0.0);
  EXPECT_GT(est.events, 0u);
}

TEST(Explore, CrtBeatsNoCrt) {
  ModexpConfig with, without;
  with.crt = CrtMode::kGarner;
  without.crt = CrtMode::kNone;
  const auto e_with = estimate_config(with, workload(), models());
  const auto e_without = estimate_config(without, workload(), models());
  EXPECT_LT(e_with.avg_cycles, e_without.avg_cycles);
}

TEST(Explore, Radix32BeatsRadix16) {
  ModexpConfig r32, r16;
  r32.radix = Radix::k32;
  r16.radix = Radix::k16;
  const auto e32 = estimate_config(r32, workload(), models());
  const auto e16 = estimate_config(r16, workload(), models());
  EXPECT_LT(e32.avg_cycles, e16.avg_cycles);
  // Radix-16 should cost roughly 2-4x (doubled limb counts, quadratic ops).
  EXPECT_GT(e16.avg_cycles / e32.avg_cycles, 1.5);
}

TEST(Explore, CachingHelpsRepeatedOperations) {
  ModexpConfig none, full;
  none.caching = Caching::kNone;
  full.caching = Caching::kFull;
  const auto e_none = estimate_config(none, workload(), models());
  const auto e_full = estimate_config(full, workload(), models());
  EXPECT_LT(e_full.avg_cycles, e_none.avg_cycles);
}

TEST(Explore, MontgomeryBeatsDivisionReduction) {
  ModexpConfig mont, division;
  mont.mul = MulAlgo::kMontCIOS;
  division.mul = MulAlgo::kBasecaseDiv;
  const auto e_mont = estimate_config(mont, workload(), models());
  const auto e_div = estimate_config(division, workload(), models());
  EXPECT_LT(e_mont.avg_cycles, e_div.avg_cycles);
}

TEST(Explore, FullSpaceRanksAndCovers450) {
  const auto report = explore::explore_modexp_space(workload(), models());
  EXPECT_EQ(report.configs, 450u);
  EXPECT_EQ(report.ranked.size(), 450u);
  for (std::size_t i = 1; i < report.ranked.size(); ++i) {
    EXPECT_LE(report.ranked[i - 1].estimate.avg_cycles,
              report.ranked[i].estimate.avg_cycles);
  }
  // The winner should use CRT and the 32-bit radix.
  const auto& best = report.ranked.front().config;
  EXPECT_NE(best.crt, CrtMode::kNone);
  EXPECT_EQ(best.radix, Radix::k32);
  // The worst should be division-based radix-16 without CRT.
  const auto& worst = report.ranked.back().config;
  EXPECT_EQ(worst.crt, CrtMode::kNone);
  EXPECT_EQ(worst.radix, Radix::k16);
}

TEST(Explore, ValidationAgainstIssIsAccurate) {
  kernels::Machine machine = kernels::make_modexp_machine();
  const auto report = explore::validate_estimates(machine, workload(), models());
  ASSERT_EQ(report.points.size(), 8u);
  for (const auto& p : report.points) {
    EXPECT_GT(p.measured_cycles, 0.0) << p.name;
    // Each point within 25%; the paper reports 11.8% mean absolute error.
    EXPECT_LT(p.error_pct, 25.0) << p.name << " est=" << p.estimated_cycles
                                 << " iss=" << p.measured_cycles;
  }
  EXPECT_LT(report.mean_abs_error_pct, 20.0);
  EXPECT_GT(report.speedup_factor, 1.0)
      << "macro-model estimation must beat ISS wall time";
}

}  // namespace
}  // namespace wsp
