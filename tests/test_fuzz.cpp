// Randomized cross-checks beyond the structured sweeps: random
// configurations, operand sizes and values, always compared against the
// Mpz reference or the host crypto library.
#include <gtest/gtest.h>

#include "crypto/aes.h"
#include "crypto/des.h"
#include "kernels/des_kernel.h"
#include "kernels/modexp_kernel.h"
#include "mp/modexp.h"
#include "mp/prime.h"
#include "support/random.h"

namespace wsp {
namespace {

ModexpConfig random_config(Rng& rng) {
  const auto configs = all_modexp_configs();
  return configs[rng.below(configs.size())];
}

TEST(Fuzz, RandomConfigsRandomOperands) {
  Rng rng(701);
  for (int iter = 0; iter < 60; ++iter) {
    const ModexpConfig cfg = random_config(rng);
    // Random odd modulus (Montgomery-compatible) of 33..160 bits.
    const std::size_t bits = 33 + rng.below(128);
    Mpz mod = random_bits(bits, rng);
    if (mod.is_even()) mod = mod + Mpz(1);
    const Mpz base = random_below(mod, rng);
    const Mpz exp = random_bits(1 + rng.below(96), rng);
    ModexpEngine engine(cfg);
    EXPECT_EQ(engine.powm(base, exp, mod), Mpz::powm(base, exp, mod))
        << cfg.name() << " bits=" << bits << " iter=" << iter;
  }
}

TEST(Fuzz, EngineReuseAcrossDifferentModuli) {
  // One engine, many moduli: caches keyed per modulus must not leak.
  Rng rng(702);
  ModexpConfig cfg;
  cfg.caching = Caching::kFull;
  ModexpEngine engine(cfg);
  for (int iter = 0; iter < 20; ++iter) {
    Mpz mod = random_bits(64 + rng.below(64), rng);
    if (mod.is_even()) mod = mod + Mpz(1);
    const Mpz base = random_below(mod, rng);
    const Mpz exp = random_bits(48, rng);
    EXPECT_EQ(engine.powm(base, exp, mod), Mpz::powm(base, exp, mod)) << iter;
    // Repeat with the cache warm.
    EXPECT_EQ(engine.powm(base, exp, mod), Mpz::powm(base, exp, mod)) << iter;
  }
}

TEST(Fuzz, IssMontAgainstReferenceRandomSizes) {
  kernels::Machine m = kernels::make_modexp_machine(kernels::MpnTieConfig{8, 8});
  kernels::IssModexp mx(m);
  Rng rng(703);
  for (int iter = 0; iter < 12; ++iter) {
    const std::size_t bits = 64 + 32 * rng.below(6);  // 64..224
    Mpz mod = random_bits(bits, rng);
    if (mod.is_even()) mod = mod + Mpz(1);
    const Mpz base = random_below(mod, rng);
    const Mpz exp = random_bits(40, rng);
    const unsigned w = 1 + static_cast<unsigned>(rng.below(5));
    EXPECT_EQ(mx.powm_mont(base, exp, mod, w).result, Mpz::powm(base, exp, mod))
        << "bits=" << bits << " w=" << w;
  }
}

TEST(Fuzz, DesKernelRandomKeysTieVsBaseVsHost) {
  kernels::Machine bm = kernels::make_des_machine(false);
  kernels::Machine tm = kernels::make_des_machine(true);
  kernels::DesKernel bk(bm, false), tk(tm, true);
  Rng rng(704);
  for (int iter = 0; iter < 30; ++iter) {
    const std::uint64_t key = rng.next_u64();
    const std::uint64_t block = rng.next_u64();
    bk.set_key(key);
    tk.set_key(key);
    const std::uint64_t expect = des::encrypt_block(block, des::key_schedule(key));
    EXPECT_EQ(bk.encrypt_block(block), expect) << iter;
    EXPECT_EQ(tk.encrypt_block(block), expect) << iter;
  }
}

TEST(Fuzz, AesHostEncryptDecryptAllKeySizes) {
  Rng rng(705);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t klen = 8 * (2 + rng.below(3));  // 16/24/32
    const auto ks = aes::key_schedule(rng.bytes(klen));
    const auto block = rng.bytes(16);
    std::uint8_t ct[16], back[16];
    aes::encrypt_block(block.data(), ct, ks);
    aes::decrypt_block(ct, back, ks);
    EXPECT_EQ(std::vector<std::uint8_t>(back, back + 16), block) << iter;
  }
}

TEST(Fuzz, CrtKeyDerivationConsistency) {
  Rng rng(706);
  for (int iter = 0; iter < 5; ++iter) {
    const auto key = rsa::generate_key(128 + 64 * rng.below(3), rng);
    // Garner and textbook recombination must agree for random inputs.
    ModexpConfig garner, textbook;
    garner.crt = CrtMode::kGarner;
    textbook.crt = CrtMode::kTextbook;
    ModexpEngine eg(garner), et(textbook);
    const Mpz c = random_below(key.n, rng);
    EXPECT_EQ(eg.powm_crt(c, key.d, key.crt), et.powm_crt(c, key.d, key.crt))
        << iter;
  }
}

}  // namespace
}  // namespace wsp
