// Randomized cross-checks beyond the structured sweeps: random
// configurations, operand sizes and values, always compared against the
// Mpz reference or the host crypto library.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "crypto/aes.h"
#include "crypto/batch.h"
#include "crypto/des.h"
#include "crypto/rc4.h"
#include "crypto/rsa.h"
#include "kernels/des_kernel.h"
#include "kernels/modexp_kernel.h"
#include "mp/modexp.h"
#include "mp/prime.h"
#include "scenario/compile.h"
#include "server/checkpoint.h"
#include "server/engine.h"
#include "server/record.h"
#include "ssl/wep.h"
#include "support/random.h"
#include "support/replay.h"

namespace wsp {
namespace {

ModexpConfig random_config(Rng& rng) {
  const auto configs = all_modexp_configs();
  return configs[rng.below(configs.size())];
}

TEST(Fuzz, RandomConfigsRandomOperands) {
  Rng rng(701);
  for (int iter = 0; iter < 60; ++iter) {
    const ModexpConfig cfg = random_config(rng);
    // Random odd modulus (Montgomery-compatible) of 33..160 bits.
    const std::size_t bits = 33 + rng.below(128);
    Mpz mod = random_bits(bits, rng);
    if (mod.is_even()) mod = mod + Mpz(1);
    const Mpz base = random_below(mod, rng);
    const Mpz exp = random_bits(1 + rng.below(96), rng);
    ModexpEngine engine(cfg);
    EXPECT_EQ(engine.powm(base, exp, mod), Mpz::powm(base, exp, mod))
        << cfg.name() << " bits=" << bits << " iter=" << iter;
  }
}

TEST(Fuzz, EngineReuseAcrossDifferentModuli) {
  // One engine, many moduli: caches keyed per modulus must not leak.
  Rng rng(702);
  ModexpConfig cfg;
  cfg.caching = Caching::kFull;
  ModexpEngine engine(cfg);
  for (int iter = 0; iter < 20; ++iter) {
    Mpz mod = random_bits(64 + rng.below(64), rng);
    if (mod.is_even()) mod = mod + Mpz(1);
    const Mpz base = random_below(mod, rng);
    const Mpz exp = random_bits(48, rng);
    EXPECT_EQ(engine.powm(base, exp, mod), Mpz::powm(base, exp, mod)) << iter;
    // Repeat with the cache warm.
    EXPECT_EQ(engine.powm(base, exp, mod), Mpz::powm(base, exp, mod)) << iter;
  }
}

TEST(Fuzz, IssMontAgainstReferenceRandomSizes) {
  kernels::Machine m = kernels::make_modexp_machine(kernels::MpnTieConfig{8, 8});
  kernels::IssModexp mx(m);
  Rng rng(703);
  for (int iter = 0; iter < 12; ++iter) {
    const std::size_t bits = 64 + 32 * rng.below(6);  // 64..224
    Mpz mod = random_bits(bits, rng);
    if (mod.is_even()) mod = mod + Mpz(1);
    const Mpz base = random_below(mod, rng);
    const Mpz exp = random_bits(40, rng);
    const unsigned w = 1 + static_cast<unsigned>(rng.below(5));
    EXPECT_EQ(mx.powm_mont(base, exp, mod, w).result, Mpz::powm(base, exp, mod))
        << "bits=" << bits << " w=" << w;
  }
}

TEST(Fuzz, DesKernelRandomKeysTieVsBaseVsHost) {
  kernels::Machine bm = kernels::make_des_machine(false);
  kernels::Machine tm = kernels::make_des_machine(true);
  kernels::DesKernel bk(bm, false), tk(tm, true);
  Rng rng(704);
  for (int iter = 0; iter < 30; ++iter) {
    const std::uint64_t key = rng.next_u64();
    const std::uint64_t block = rng.next_u64();
    bk.set_key(key);
    tk.set_key(key);
    const std::uint64_t expect = des::encrypt_block(block, des::key_schedule(key));
    EXPECT_EQ(bk.encrypt_block(block), expect) << iter;
    EXPECT_EQ(tk.encrypt_block(block), expect) << iter;
  }
}

TEST(Fuzz, AesHostEncryptDecryptAllKeySizes) {
  Rng rng(705);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t klen = 8 * (2 + rng.below(3));  // 16/24/32
    const auto ks = aes::key_schedule(rng.bytes(klen));
    const auto block = rng.bytes(16);
    std::uint8_t ct[16], back[16];
    aes::encrypt_block(block.data(), ct, ks);
    aes::decrypt_block(ct, back, ks);
    EXPECT_EQ(std::vector<std::uint8_t>(back, back + 16), block) << iter;
  }
}

// --- round-trip laws: decrypt(encrypt(x)) == x -----------------------------

TEST(Fuzz, AesEcbCbcRoundTrip) {
  Rng rng(707);
  for (int iter = 0; iter < 15; ++iter) {
    const std::size_t klen = 8 * (2 + rng.below(3));  // 16/24/32
    const auto ks = aes::key_schedule(rng.bytes(klen));
    const auto data = rng.bytes(16 * (1 + rng.below(8)));
    EXPECT_EQ(aes::decrypt_ecb(aes::encrypt_ecb(data, ks), ks), data) << iter;
    std::array<std::uint8_t, 16> iv{};
    const auto ivb = rng.bytes(16);
    std::copy(ivb.begin(), ivb.end(), iv.begin());
    EXPECT_EQ(aes::decrypt_cbc(aes::encrypt_cbc(data, ks, iv), ks, iv), data)
        << iter;
  }
}

TEST(Fuzz, DesEcbCbcAndTripleDesRoundTrip) {
  Rng rng(708);
  for (int iter = 0; iter < 15; ++iter) {
    const auto ks = des::key_schedule(rng.next_u64());
    const auto data = rng.bytes(8 * (1 + rng.below(10)));
    EXPECT_EQ(des::decrypt_ecb(des::encrypt_ecb(data, ks), ks), data) << iter;
    const std::uint64_t iv = rng.next_u64();
    EXPECT_EQ(des::decrypt_cbc(des::encrypt_cbc(data, ks, iv), ks, iv), data)
        << iter;
    const auto ks3 = des::triple_key_schedule(rng.next_u64(), rng.next_u64(),
                                              rng.next_u64());
    const std::uint64_t block = rng.next_u64();
    EXPECT_EQ(des::decrypt_block_3des(des::encrypt_block_3des(block, ks3), ks3),
              block)
        << iter;
  }
}

// Batched-kernel round-trip laws: what one path encrypts the OTHER path
// must decrypt, in both orders, for every cipher the BatchDispatcher
// serves.  Cross-path composition catches shared-bug symmetry (a kernel
// that is its own inverse but disagrees with the scalar library).
TEST(Fuzz, BatchEncryptScalarDecryptRoundTripAes) {
  Rng rng(714);
  for (int iter = 0; iter < 12; ++iter) {
    const std::size_t klen = 8 * (2 + rng.below(3));  // 16/24/32
    const auto ks = aes::key_schedule(rng.bytes(klen));
    const auto data = rng.bytes(16 * (1 + rng.below(12)));
    const auto ivb = rng.bytes(16);
    std::array<std::uint8_t, 16> iv{};
    std::copy(ivb.begin(), ivb.end(), iv.begin());

    // Batched encrypt -> scalar decrypt.
    std::vector<std::uint8_t> ct(data.size());
    auto chain = ivb;
    crypto::BatchDispatcher d(1 + static_cast<unsigned>(rng.below(8)));
    d.submit({crypto::BatchCipher::kAes, crypto::BatchDir::kEncrypt, &ks,
              data.data(), ct.data(), data.size(), chain.data()});
    d.flush();
    EXPECT_EQ(aes::decrypt_cbc(ct, ks, iv), data) << iter;

    // Scalar encrypt -> batched decrypt.
    const auto ct2 = aes::encrypt_cbc(data, ks, iv);
    std::vector<std::uint8_t> back(data.size());
    chain = ivb;
    d.submit({crypto::BatchCipher::kAes, crypto::BatchDir::kDecrypt, &ks,
              ct2.data(), back.data(), ct2.size(), chain.data()});
    d.flush();
    EXPECT_EQ(back, data) << iter;
  }
}

TEST(Fuzz, BatchEncryptScalarDecryptRoundTripDes) {
  Rng rng(715);
  auto store_be64 = [](std::uint64_t v, std::uint8_t* out) {
    for (int i = 0; i < 8; ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
    }
  };
  for (int iter = 0; iter < 12; ++iter) {
    const auto ks = des::key_schedule(rng.next_u64());
    const auto data = rng.bytes(8 * (1 + rng.below(16)));
    const std::uint64_t iv = rng.next_u64();
    std::array<std::uint8_t, 8> ivb{};
    store_be64(iv, ivb.data());

    std::vector<std::uint8_t> ct(data.size());
    auto chain = ivb;
    crypto::BatchDispatcher d(1 + static_cast<unsigned>(rng.below(8)));
    d.submit({crypto::BatchCipher::kDes, crypto::BatchDir::kEncrypt, &ks,
              data.data(), ct.data(), data.size(), chain.data()});
    d.flush();
    EXPECT_EQ(des::decrypt_cbc(ct, ks, iv), data) << iter;

    const auto ct2 = des::encrypt_cbc(data, ks, iv);
    std::vector<std::uint8_t> back(data.size());
    chain = ivb;
    d.submit({crypto::BatchCipher::kDes, crypto::BatchDir::kDecrypt, &ks,
              ct2.data(), back.data(), ct2.size(), chain.data()});
    d.flush();
    EXPECT_EQ(back, data) << iter;
  }
}

TEST(Fuzz, BatchEncryptScalarDecryptRoundTripTripleDes) {
  // No scalar 3DES-CBC helper exists, so the scalar side is the manual
  // CBC composition around encrypt/decrypt_block_3des — the same shape
  // ssl.cpp uses, which is the composition the dispatcher must match.
  Rng rng(716);
  auto load_be64 = [](const std::uint8_t* in) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | in[i];
    return v;
  };
  auto store_be64 = [](std::uint64_t v, std::uint8_t* out) {
    for (int i = 0; i < 8; ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
    }
  };
  for (int iter = 0; iter < 12; ++iter) {
    const auto ks3 = des::triple_key_schedule(rng.next_u64(), rng.next_u64(),
                                              rng.next_u64());
    const auto data = rng.bytes(8 * (1 + rng.below(16)));
    const auto ivb = rng.bytes(8);

    std::vector<std::uint8_t> ct(data.size());
    auto chain = ivb;
    crypto::BatchDispatcher d(1 + static_cast<unsigned>(rng.below(8)));
    d.submit({crypto::BatchCipher::kTripleDes, crypto::BatchDir::kEncrypt,
              &ks3, data.data(), ct.data(), data.size(), chain.data()});
    d.flush();
    // Scalar decrypt of the batched ciphertext.
    std::vector<std::uint8_t> back(data.size());
    std::uint64_t prev = load_be64(ivb.data());
    for (std::size_t off = 0; off < ct.size(); off += 8) {
      const std::uint64_t c = load_be64(ct.data() + off);
      store_be64(des::decrypt_block_3des(c, ks3) ^ prev, back.data() + off);
      prev = c;
    }
    EXPECT_EQ(back, data) << iter;

    // Scalar encrypt, batched decrypt.
    std::vector<std::uint8_t> ct2(data.size());
    prev = load_be64(ivb.data());
    for (std::size_t off = 0; off < data.size(); off += 8) {
      prev = des::encrypt_block_3des(load_be64(data.data() + off) ^ prev, ks3);
      store_be64(prev, ct2.data() + off);
    }
    std::vector<std::uint8_t> back2(data.size());
    chain = ivb;
    d.submit({crypto::BatchCipher::kTripleDes, crypto::BatchDir::kDecrypt,
              &ks3, ct2.data(), back2.data(), ct2.size(), chain.data()});
    d.flush();
    EXPECT_EQ(back2, data) << iter;
  }
}

TEST(Fuzz, Rc4KeystreamIsSelfInverse) {
  Rng rng(709);
  for (int iter = 0; iter < 15; ++iter) {
    const auto key = rng.bytes(1 + rng.below(32));
    const auto data = rng.bytes(1 + rng.below(512));
    Rc4 enc(key), dec(key);
    EXPECT_EQ(dec.process(enc.process(data)), data) << iter;
  }
}

TEST(Fuzz, WepSealOpenRoundTripAndCorruptionDetection) {
  Rng rng(710);
  for (int iter = 0; iter < 10; ++iter) {
    const auto key = rng.bytes(iter % 2 == 0 ? 5 : 13);  // 40- / 104-bit WEP
    const auto payload = rng.bytes(1 + rng.below(256));
    wep::Frame frame = wep::seal(payload, key, rng);
    EXPECT_EQ(wep::open(frame, key), payload) << iter;
    // Any single flipped ciphertext bit must break the ICV.
    wep::Frame bad = frame;
    bad.ciphertext[rng.below(bad.ciphertext.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    EXPECT_THROW(wep::open(bad, key), std::runtime_error) << iter;
  }
}

// --- modular-exponentiation edge cases across the algorithm axes -----------

TEST(Fuzz, ModexpTrivialExponentsAllMulAlgos) {
  // exp = 0 and exp = 1 short-circuit differently in the windowed ladder;
  // every (algorithm, window) pair must still agree with the reference.
  Rng rng(711);
  const MulAlgo algos[] = {MulAlgo::kBasecaseDiv, MulAlgo::kKaratsubaDiv,
                           MulAlgo::kBarrett, MulAlgo::kMontSOS,
                           MulAlgo::kMontCIOS};
  for (const MulAlgo algo : algos) {
    for (unsigned w = 1; w <= 5; ++w) {
      ModexpConfig cfg;
      cfg.mul = algo;
      cfg.window_bits = w;
      ModexpEngine engine(cfg);
      Mpz mod = random_bits(96, rng);
      if (mod.is_even()) mod = mod + Mpz(1);  // odd: valid for all algos
      const Mpz base = random_below(mod, rng);
      EXPECT_EQ(engine.powm(base, Mpz(0), mod), Mpz::powm(base, Mpz(0), mod))
          << cfg.name();
      EXPECT_EQ(engine.powm(base, Mpz(1), mod), Mpz::powm(base, Mpz(1), mod))
          << cfg.name();
      EXPECT_EQ(engine.powm(Mpz(0), Mpz(5), mod), Mpz::powm(Mpz(0), Mpz(5), mod))
          << cfg.name();
      EXPECT_EQ(engine.powm(Mpz(1), base, mod), Mpz::powm(Mpz(1), base, mod))
          << cfg.name();
    }
  }
}

TEST(Fuzz, ModexpEvenExponentsAgreeAcrossAlgos) {
  // Even exponents exercise the square-only path of the ladder (no final
  // multiply for trailing zero bits); all algorithms must agree with the
  // reference and with each other.
  Rng rng(712);
  const MulAlgo algos[] = {MulAlgo::kBasecaseDiv, MulAlgo::kKaratsubaDiv,
                           MulAlgo::kBarrett, MulAlgo::kMontSOS,
                           MulAlgo::kMontCIOS};
  for (int iter = 0; iter < 8; ++iter) {
    Mpz mod = random_bits(80 + 16 * rng.below(4), rng);
    if (mod.is_even()) mod = mod + Mpz(1);
    const Mpz base = random_below(mod, rng);
    Mpz exp = random_bits(40, rng);
    if (exp.is_odd()) exp = exp + Mpz(1);  // force even
    const Mpz want = Mpz::powm(base, exp, mod);
    for (const MulAlgo algo : algos) {
      ModexpConfig cfg;
      cfg.mul = algo;
      cfg.window_bits = 1 + static_cast<unsigned>(rng.below(5));
      ModexpEngine engine(cfg);
      EXPECT_EQ(engine.powm(base, exp, mod), want)
          << cfg.name() << " iter=" << iter;
    }
  }
}

TEST(Fuzz, ModexpCrtTrivialAndEvenExponents) {
  // The CRT paths read dp/dq from the CrtKey, so each exponent needs its own
  // derived key; exp = 0 / 1 / even must match the direct computation mod n.
  Rng rng(713);
  const auto key = rsa::generate_key(128, rng);
  const Mpz c = random_below(key.n, rng);
  for (const std::int64_t d : {0, 1, 6, 20}) {
    const CrtKey dk = CrtKey::derive(key.crt.p, key.crt.q, Mpz(d));
    const Mpz want = Mpz::powm(c, Mpz(d), key.n);
    for (const CrtMode crt :
         {CrtMode::kNone, CrtMode::kTextbook, CrtMode::kGarner}) {
      ModexpConfig cfg;
      cfg.crt = crt;
      ModexpEngine engine(cfg);
      EXPECT_EQ(engine.powm_crt(c, Mpz(d), dk), want)
          << cfg.name() << " d=" << d;
    }
  }
}

TEST(Fuzz, CrtKeyDerivationConsistency) {
  Rng rng(706);
  for (int iter = 0; iter < 5; ++iter) {
    const auto key = rsa::generate_key(128 + 64 * rng.below(3), rng);
    // Garner and textbook recombination must agree for random inputs.
    ModexpConfig garner, textbook;
    garner.crt = CrtMode::kGarner;
    textbook.crt = CrtMode::kTextbook;
    ModexpEngine eg(garner), et(textbook);
    const Mpz c = random_below(key.n, rng);
    EXPECT_EQ(eg.powm_crt(c, key.d, key.crt), et.powm_crt(c, key.d, key.crt))
        << iter;
  }
}

// The .wsp compiler must never crash or leak a non-ScenarioError exception:
// any byte string either compiles or produces a typed diagnostic
// (docs/scenarios.md §4).  Returns true when the input compiled cleanly.
bool compile_survives(const std::string& src) {
  try {
    (void)scenario::compile(src, "<fuzz>");
    return true;
  } catch (const scenario::ScenarioError& err) {
    // Diagnostics must stay renderable and carry a stable code.
    EXPECT_FALSE(err.diagnostic().render("<fuzz>").empty());
    EXPECT_NE(static_cast<int>(err.code()), 0);
    return false;
  }
  // Anything else (std::bad_alloc, std::out_of_range from a container,
  // SIGSEGV, ...) propagates and fails the test outright.
}

TEST(Fuzz, ScenarioCompilerRandomBytes) {
  Rng rng(901);
  const char alphabet[] =
      "scenario phase defaults mix sizes faults {}\":,.0123456789\n\t\\\"#eE+-";
  for (int iter = 0; iter < 400; ++iter) {
    std::string src;
    const std::size_t len = rng.below(160);
    for (std::size_t i = 0; i < len; ++i) {
      // Mostly grammar-adjacent bytes, occasionally raw binary.
      if (rng.below(8) == 0) {
        src.push_back(static_cast<char>(rng.below(256)));
      } else {
        src.push_back(alphabet[rng.below(sizeof(alphabet) - 1)]);
      }
    }
    compile_survives(src);
  }
}

TEST(Fuzz, ScenarioCompilerMutatedValidSource) {
  const std::string valid =
      "scenario \"fuzz\" {\n"
      "  seed 7\n"
      "  defaults { arrivals open, mix { aes128: 2, rc4: 1 } }\n"
      "  phase \"a\" { sessions 8, load 0.5, sizes { 1024: 1 } }\n"
      "  phase \"b\" { sessions 4, resume 0.5, sizes { 2048: 1 },\n"
      "               faults { wire_flip_rate 0.1 } }\n"
      "}\n";
  ASSERT_TRUE(compile_survives(valid));
  Rng rng(902);
  // Truncations at every byte boundary...
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    compile_survives(valid.substr(0, cut));
  }
  // ...and random single/multi-byte mutations of the valid program.
  for (int iter = 0; iter < 300; ++iter) {
    std::string src = valid;
    const int edits = 1 + static_cast<int>(rng.below(4));
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = rng.below(src.size());
      switch (rng.below(3)) {
        case 0: src[pos] = static_cast<char>(rng.below(256)); break;
        case 1: src.erase(pos, 1 + rng.below(5)); break;
        default: src.insert(pos, 1, static_cast<char>(rng.below(256))); break;
      }
      if (src.empty()) src = "{";
    }
    compile_survives(src);
  }
}

// --- crash-recovery trace fuzzing (docs/recovery.md) ------------------------
//
// The resume pipeline faces whatever a dying process left on disk.  The
// contract under fuzzing: scan_trace_for_resume / resume_run /
// decode_checkpoint either succeed or throw a typed replay::ReplayError —
// never any other exception, never a crash, never a silently-wrong resume
// (the per-shard digest chains make silent divergence a typed error too).

/// One small torn trace: a recorded run killed mid-stream, with its
/// checkpoint-chunk boundaries and the uninterrupted reference report.
struct FuzzTrace {
  std::vector<std::uint8_t> bytes;
  std::vector<std::size_t> offsets;
  server::RunReport reference;
};

const FuzzTrace& fuzz_trace() {
  static const FuzzTrace trace = [] {
    FuzzTrace t;
    server::TrafficScenario s;
    s.seed = 903;
    s.sessions = 24;
    s.model = server::ArrivalModel::kOpenLoop;
    s.offered_load = 0.8;
    s.ciphers = {ssl::Cipher::kRc4, ssl::Cipher::kAes128Cbc};
    s.transaction_sizes = {512, 2048};
    s.record_bytes = 512;
    server::EngineConfig cfg;
    cfg.threads = 1;
    cfg.shards = 2;
    cfg.queue_capacity = 32;
    cfg.record_batch = 4;
    cfg.batch_lanes = 8;  // staged cohorts -> parked sessions in checkpoints
    cfg.record_events = true;
    t.reference = server::Engine(cfg).run(s);

    cfg.checkpoint_every = t.reference.makespan_cycles / 5.0;
    cfg.faults.crash_at_cycles = t.reference.makespan_cycles * 0.7;
    server::RunRecorder recorder(cfg, s);
    server::Engine engine(recorder.engine_config());
    try {
      (void)engine.run(s);
    } catch (const server::CrashFault&) {
      recorder.crash();
    }
    t.bytes = recorder.bytes();
    t.offsets = recorder.checkpoint_offsets();
    return t;
  }();
  return trace;
}

/// Scans and (when the scan yields checkpoints) resumes `bytes`.  Any
/// non-ReplayError escape fails the test outright.  Returns true when the
/// resume ran and matched the reference.
bool scan_resume_survives(const std::vector<std::uint8_t>& bytes,
                          const server::RunReport& reference) {
  try {
    const auto scan = server::scan_trace_for_resume(bytes);
    const auto result = server::resume_run(scan);
    const auto mismatches =
        server::compare_reports(reference, result.report);
    EXPECT_TRUE(mismatches.empty())
        << "corrupt trace resumed to a DIFFERENT run: " << mismatches.front();
    return mismatches.empty();
  } catch (const replay::ReplayError&) {
    return false;  // typed rejection: the acceptable outcome for damage
  }
}

TEST(Fuzz, ResumeTraceTruncatedAtEveryByte) {
  const FuzzTrace& t = fuzz_trace();
  ASSERT_FALSE(t.offsets.empty());
  std::size_t resumed = 0;
  for (std::size_t cut = 0; cut <= t.bytes.size(); ++cut) {
    std::vector<std::uint8_t> prefix(t.bytes.begin(), t.bytes.begin() + cut);
    if (scan_resume_survives(prefix, t.reference)) ++resumed;
  }
  // Every cut at or past the input chunks scans and resumes (restarting
  // from scratch when no checkpoint survived) — in particular all of them
  // from the first checkpoint boundary on.
  EXPECT_GE(resumed, t.bytes.size() - t.offsets.front());
}

TEST(Fuzz, ResumeTraceRandomByteCorruption) {
  const FuzzTrace& t = fuzz_trace();
  Rng rng(904);
  for (int iter = 0; iter < 150; ++iter) {
    auto bytes = t.bytes;
    const int edits = 1 + static_cast<int>(rng.below(4));
    for (int e = 0; e < edits; ++e) {
      switch (rng.below(3)) {
        case 0:  // overwrite
          bytes[rng.below(bytes.size())] =
              static_cast<std::uint8_t>(rng.below(256));
          break;
        case 1:  // single bit flip
          bytes[rng.below(bytes.size())] ^=
              static_cast<std::uint8_t>(1u << rng.below(8));
          break;
        default: {  // tear a run of bytes out of the middle
          const std::size_t pos = rng.below(bytes.size());
          const std::size_t len =
              std::min<std::size_t>(1 + rng.below(32), bytes.size() - pos);
          bytes.erase(bytes.begin() + pos, bytes.begin() + pos + len);
          break;
        }
      }
    }
    scan_resume_survives(bytes, t.reference);
  }
}

TEST(Fuzz, CheckpointPayloadMutationsAreTypedOrHarmless) {
  // Single-byte overwrites of a real checkpoint payload: decode + validate
  // either succeeds (the byte was immaterial or the mutation produced
  // another self-consistent checkpoint) or throws a typed ReplayError.
  const FuzzTrace& t = fuzz_trace();
  const auto scan = server::scan_trace_for_resume(t.bytes);
  ASSERT_FALSE(scan.checkpoints.empty());
  std::vector<std::uint8_t> payload;
  server::encode_checkpoint(payload, scan.checkpoints.back());
  Rng rng(905);
  std::size_t typed = 0;
  for (int iter = 0; iter < 300; ++iter) {
    auto bytes = payload;
    bytes[rng.below(bytes.size())] = static_cast<std::uint8_t>(rng.below(256));
    try {
      server::validate_checkpoint(server::decode_checkpoint(bytes));
    } catch (const replay::ReplayError&) {
      ++typed;
    }
  }
  EXPECT_GT(typed, 0u) << "no mutation was ever detected";
}

TEST(Fuzz, StaleSlabHandlesInCheckpointsAreAlwaysTyped) {
  // Stale-generation handles (even gen: recycled before capture) must be a
  // typed kMalformed wherever they appear, for every parked entry.
  const FuzzTrace& t = fuzz_trace();
  const auto scan = server::scan_trace_for_resume(t.bytes);
  ASSERT_FALSE(scan.checkpoints.empty());
  bool saw_parked = false;
  for (const auto& cp : scan.checkpoints) {
    for (std::size_t i = 0; i < cp.entries.size(); ++i) {
      if (!cp.entries[i].parked) continue;
      saw_parked = true;
      auto bad = cp;
      bad.entries[i].parked_info.handle.gen &= ~1u;
      try {
        server::validate_checkpoint(bad);
        FAIL() << "stale handle in entry " << i << " accepted";
      } catch (const replay::ReplayError& e) {
        EXPECT_EQ(e.kind(), replay::ErrorKind::kMalformed);
      }
    }
  }
  EXPECT_TRUE(saw_parked) << "fuzz trace captured no parked cohort members";
}

}  // namespace
}  // namespace wsp
