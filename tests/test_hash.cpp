#include <gtest/gtest.h>

#include "crypto/hmac.h"
#include "crypto/md5.h"
#include "crypto/sha1.h"
#include "support/hex.h"

namespace wsp {
namespace {

std::vector<std::uint8_t> bytes_of(const char* s) {
  return std::vector<std::uint8_t>(s, s + std::string(s).size());
}

template <typename A>
std::string hex_of(const A& digest) {
  return to_hex(digest.data(), digest.size());
}

TEST(Sha1, KnownAnswers) {
  EXPECT_EQ(hex_of(Sha1::hash(bytes_of(""))),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(hex_of(Sha1::hash(bytes_of("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(hex_of(Sha1::hash(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 ctx;
  const std::vector<std::uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(hex_of(ctx.digest()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const auto data = bytes_of("the quick brown fox jumps over the lazy dog etc");
  Sha1 ctx;
  for (std::size_t i = 0; i < data.size(); i += 7) {
    const std::size_t n = std::min<std::size_t>(7, data.size() - i);
    ctx.update(data.data() + i, n);
  }
  EXPECT_EQ(hex_of(ctx.digest()), hex_of(Sha1::hash(data)));
}

TEST(Md5, KnownAnswers) {
  EXPECT_EQ(hex_of(Md5::hash(bytes_of(""))), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(hex_of(Md5::hash(bytes_of("abc"))), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(hex_of(Md5::hash(bytes_of("message digest"))),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(hex_of(Md5::hash(bytes_of(
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"))),
            "d174ab98d277d9f5a5611c2c9f419d9f");
}

TEST(HmacSha1, Rfc2202Vectors) {
  // Case 1.
  EXPECT_EQ(to_hex(hmac_sha1(std::vector<std::uint8_t>(20, 0x0b), bytes_of("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
  // Case 2.
  EXPECT_EQ(to_hex(hmac_sha1(bytes_of("Jefe"), bytes_of("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
  // Case 3: 20x 0xaa key, 50x 0xdd data.
  EXPECT_EQ(to_hex(hmac_sha1(std::vector<std::uint8_t>(20, 0xaa),
                             std::vector<std::uint8_t>(50, 0xdd))),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
  // Case 6: 80-byte key (longer than block handled by hashing... 80 < 64? no,
  // 80 > 64 exercises the key-hash path).
  EXPECT_EQ(to_hex(hmac_sha1(std::vector<std::uint8_t>(80, 0xaa),
                             bytes_of("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(HmacMd5, Rfc2202Vectors) {
  EXPECT_EQ(to_hex(hmac_md5(std::vector<std::uint8_t>(16, 0x0b), bytes_of("Hi There"))),
            "9294727a3638bb1c13f48ef8158bfc9d");
  EXPECT_EQ(to_hex(hmac_md5(bytes_of("Jefe"), bytes_of("what do ya want for nothing?"))),
            "750c783e6ab0b503eaa86e310a5db738");
}

TEST(Hmac, DifferentKeysDiffer) {
  const auto d = bytes_of("payload");
  EXPECT_NE(hmac_sha1(bytes_of("k1"), d), hmac_sha1(bytes_of("k2"), d));
}

}  // namespace
}  // namespace wsp
