// Tests for the minimal JSON layer (src/support/json.*) backing the trace
// export and the BENCH_*.json artifacts.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "support/json.h"

namespace wsp {
namespace {

TEST(Json, ScalarConstructionAndAccess) {
  EXPECT_TRUE(json::Value().is_null());
  EXPECT_EQ(json::Value(true).as_bool(), true);
  EXPECT_EQ(json::Value(2.5).as_number(), 2.5);
  EXPECT_EQ(json::Value(7).as_number(), 7.0);
  EXPECT_EQ(json::Value("hi").as_string(), "hi");
  EXPECT_THROW(json::Value(1.0).as_string(), std::runtime_error);
  EXPECT_THROW(json::Value("x").as_number(), std::runtime_error);
}

TEST(Json, ObjectAndArrayBuilders) {
  json::Value doc = json::Value::object();
  doc["a"] = json::Value(1);
  doc["b"] = json::Value::array();
  doc["b"].push_back(json::Value("x"));
  doc["b"].push_back(json::Value());
  EXPECT_TRUE(doc.has("a"));
  EXPECT_FALSE(doc.has("z"));
  EXPECT_THROW(doc.at("z"), std::runtime_error);
  EXPECT_EQ(doc.at("b").size(), 2u);
  EXPECT_EQ(doc.at("b").items()[0].as_string(), "x");
  EXPECT_TRUE(doc.at("b").items()[1].is_null());
}

TEST(Json, DumpCompactAndIndented) {
  json::Value doc = json::Value::object();
  doc["n"] = json::Value(42);
  doc["s"] = json::Value("v");
  EXPECT_EQ(doc.dump(), "{\"n\":42,\"s\":\"v\"}");
  const std::string pretty = doc.dump(2);
  EXPECT_NE(pretty.find("\n  \"n\": 42"), std::string::npos);
}

TEST(Json, IntegersPrintExactly) {
  // Cycle counts are large integers; they must not pick up exponents.
  json::Value v(9007199254740991.0);  // 2^53 - 1
  EXPECT_EQ(v.dump(), "9007199254740991");
  EXPECT_EQ(json::Value(0).dump(), "0");
  EXPECT_EQ(json::Value(-17).dump(), "-17");
  EXPECT_EQ(json::Value(2.5).dump(), "2.5");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(json::Value("a\"b\\c\n\t").dump(), "\"a\\\"b\\\\c\\n\\t\"");
  EXPECT_EQ(json::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, ParseRoundTrip) {
  const std::string text =
      "{\"arr\":[1,2.5,-3,true,false,null,\"s\\u0041\"],"
      "\"nested\":{\"k\":\"v\"}}";
  const json::Value doc = json::Value::parse(text);
  const auto& arr = doc.at("arr").items();
  ASSERT_EQ(arr.size(), 7u);
  EXPECT_EQ(arr[0].as_number(), 1.0);
  EXPECT_EQ(arr[1].as_number(), 2.5);
  EXPECT_EQ(arr[2].as_number(), -3.0);
  EXPECT_TRUE(arr[3].as_bool());
  EXPECT_FALSE(arr[4].as_bool());
  EXPECT_TRUE(arr[5].is_null());
  EXPECT_EQ(arr[6].as_string(), "sA");  // \u0041 == 'A'
  EXPECT_EQ(doc.at("nested").at("k").as_string(), "v");
  // dump -> parse -> dump is a fixed point.
  EXPECT_EQ(json::Value::parse(doc.dump()).dump(), doc.dump());
}

TEST(Json, ParseUnicodeEscapesToUtf8) {
  const json::Value doc =
      json::Value::parse("[\"\\u00e9\", \"\\u20ac\"]");
  EXPECT_EQ(doc.items()[0].as_string(), "\xc3\xa9");      // e-acute, 2-byte UTF-8
  EXPECT_EQ(doc.items()[1].as_string(), "\xe2\x82\xac");  // euro sign, 3-byte UTF-8
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(json::Value::parse(""), std::runtime_error);
  EXPECT_THROW(json::Value::parse("{"), std::runtime_error);
  EXPECT_THROW(json::Value::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(json::Value::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW(json::Value::parse("'single'"), std::runtime_error);
  EXPECT_THROW(json::Value::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(json::Value::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(json::Value::parse("nul"), std::runtime_error);
}

TEST(Json, ParseWhitespaceTolerant) {
  const json::Value doc = json::Value::parse(" { \"a\" : [ 1 , 2 ] } \n");
  EXPECT_EQ(doc.at("a").size(), 2u);
}

}  // namespace
}  // namespace wsp
