// Golden known-answer tests from the primary standards documents:
//   * AES — FIPS-197 Appendix B (cipher example) and Appendix C (all three
//     key sizes), checked against the reference rounds, the T-table path,
//     and the XR32 AES kernel on the ISS;
//   * DES — FIPS-81 sample plus the classic NBS known-answer vectors,
//     checked against the bit-level reference, the SP-table path, and both
//     XR32 DES kernel forms;
//   * SHA-1 — FIPS 180 examples (including the one-million-'a' vector),
//     checked against the host implementation and the XR32 SHA-1 kernel;
//   * MD5 — RFC 1321 Appendix A.5 test suite;
//   * HMAC-MD5 / HMAC-SHA1 — RFC 2202 test cases.
//
// These pin the implementations to published constants; the structured
// sweeps and fuzz tests elsewhere only prove internal consistency.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <string>
#include <vector>

#include "crypto/aes.h"
#include "crypto/aes_mb.h"
#include "crypto/des.h"
#include "crypto/des_mb.h"
#include "crypto/hmac.h"
#include "crypto/md5.h"
#include "crypto/sha1.h"
#include "kernels/aes_kernel.h"
#include "kernels/des_kernel.h"
#include "kernels/sha1_kernel.h"
#include "support/hex.h"

namespace wsp {
namespace {

std::vector<std::uint8_t> ascii(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

template <typename Container>
std::string hex(const Container& c) {
  return to_hex(std::vector<std::uint8_t>(c.begin(), c.end()));
}

// --- AES (FIPS-197) --------------------------------------------------------

struct AesVector {
  const char* key;
  const char* plaintext;
  const char* ciphertext;
};

// Appendix B worked example plus Appendix C.1/C.2/C.3.
const AesVector kAesVectors[] = {
    {"2b7e151628aed2a6abf7158809cf4f3c", "3243f6a8885a308d313198a2e0370734",
     "3925841d02dc09fbdc118597196a0b32"},
    {"000102030405060708090a0b0c0d0e0f", "00112233445566778899aabbccddeeff",
     "69c4e0d86a7b0430d8cdb78070b4c55a"},
    {"000102030405060708090a0b0c0d0e0f1011121314151617",
     "00112233445566778899aabbccddeeff",
     "dda97ca4864cdfe06eaf70a0ec0d7191"},
    {"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
     "00112233445566778899aabbccddeeff",
     "8ea2b7ca516745bfeafc49904b496089"},
};

TEST(KatAes, Fips197HostRefAndTtable) {
  for (const AesVector& v : kAesVectors) {
    const auto key = from_hex(v.key);
    const auto pt = from_hex(v.plaintext);
    const auto ks = aes::key_schedule(key);
    std::uint8_t ct[16], back[16];

    aes::encrypt_block_ref(pt.data(), ct, ks);
    EXPECT_EQ(to_hex(ct, 16), v.ciphertext) << "ref keylen=" << key.size();
    aes::decrypt_block_ref(ct, back, ks);
    EXPECT_EQ(to_hex(back, 16), v.plaintext) << "ref keylen=" << key.size();

    aes::encrypt_block(pt.data(), ct, ks);
    EXPECT_EQ(to_hex(ct, 16), v.ciphertext) << "ttable keylen=" << key.size();
    aes::decrypt_block(ct, back, ks);
    EXPECT_EQ(to_hex(back, 16), v.plaintext) << "ttable keylen=" << key.size();
  }
}

TEST(KatAes, Fips197IssKernelAllKeySizes) {
  kernels::Machine m = kernels::make_aes_machine(kernels::AesKernelVariant::kBase);
  kernels::AesKernel k(m, kernels::AesKernelVariant::kBase);
  for (const AesVector& v : kAesVectors) {
    k.set_key(from_hex(v.key));
    EXPECT_EQ(to_hex(k.encrypt_block(from_hex(v.plaintext))), v.ciphertext)
        << "keylen=" << from_hex(v.key).size();
  }
}

// A single CBC block under an all-zero IV is exactly one ECB block, so the
// published ECB vectors also pin the multi-buffer CBC kernels.  Each vector
// is placed in EVERY lane position of a full 8-wide batch, with the other
// seven lanes running decoy vectors (different keys — for AES different key
// SIZES, which exercises the by-rounds partitioning) to prove no lane reads
// a neighbor's key schedule or state.
TEST(KatAes, Fips197MultiBufferEveryLanePosition) {
  constexpr int kLanes = 8;
  std::vector<aes::KeySchedule> schedules;
  for (const AesVector& v : kAesVectors) {
    schedules.push_back(aes::key_schedule(from_hex(v.key)));
  }
  const int n = static_cast<int>(std::size(kAesVectors));
  for (int vi = 0; vi < n; ++vi) {
    for (int pos = 0; pos < kLanes; ++pos) {
      std::uint8_t in[kLanes][16], out[kLanes][16], chain[kLanes][16];
      aes_mb::CbcLane lanes[kLanes];
      const char* want_ct[kLanes];
      const char* want_pt[kLanes];
      for (int l = 0; l < kLanes; ++l) {
        // The vector under test sits at `pos`; decoys cycle the others.
        const int which = l == pos ? vi : (vi + 1 + l) % n;
        const AesVector& v = kAesVectors[which];
        const auto pt = from_hex(v.plaintext);
        std::copy(pt.begin(), pt.end(), in[l]);
        std::fill(chain[l], chain[l] + 16, 0);
        lanes[l] = {&schedules[which], in[l], out[l], 1, chain[l]};
        want_ct[l] = v.ciphertext;
        want_pt[l] = v.plaintext;
      }
      aes_mb::encrypt_cbc(lanes, kLanes, kLanes);
      for (int l = 0; l < kLanes; ++l) {
        EXPECT_EQ(to_hex(out[l], 16), want_ct[l])
            << "encrypt vector " << vi << " at lane " << pos << ", lane " << l;
      }
      // Decrypt direction: feed the ciphertexts back under fresh zero IVs.
      for (int l = 0; l < kLanes; ++l) {
        std::copy(out[l], out[l] + 16, in[l]);
        std::fill(chain[l], chain[l] + 16, 0);
      }
      aes_mb::decrypt_cbc(lanes, kLanes, kLanes);
      for (int l = 0; l < kLanes; ++l) {
        EXPECT_EQ(to_hex(out[l], 16), want_pt[l])
            << "decrypt vector " << vi << " at lane " << pos << ", lane " << l;
      }
    }
  }
}

// --- DES (FIPS-81 / NBS known-answer vectors) ------------------------------

struct DesVector {
  std::uint64_t key;
  std::uint64_t plaintext;
  std::uint64_t ciphertext;
};

const DesVector kDesVectors[] = {
    // FIPS-81 ECB sample: key 0123456789abcdef, "Now is t".
    {0x0123456789abcdefULL, 0x4e6f772069732074ULL, 0x3fa40e8a984d4815ULL},
    // NBS known-answer classics.
    {0x0000000000000000ULL, 0x0000000000000000ULL, 0x8ca64de9c1b123a7ULL},
    {0xffffffffffffffffULL, 0xffffffffffffffffULL, 0x7359b2163e4edc58ULL},
    {0x3000000000000000ULL, 0x1000000000000001ULL, 0x958e6e627a05557bULL},
};

TEST(KatDes, Fips81HostRefAndSpTables) {
  for (const DesVector& v : kDesVectors) {
    const auto ks = des::key_schedule(v.key);
    EXPECT_EQ(des::encrypt_block_ref(v.plaintext, ks), v.ciphertext);
    EXPECT_EQ(des::decrypt_block_ref(v.ciphertext, ks), v.plaintext);
    EXPECT_EQ(des::encrypt_block(v.plaintext, ks), v.ciphertext);
    EXPECT_EQ(des::decrypt_block(v.ciphertext, ks), v.plaintext);
  }
}

TEST(KatDes, TripleDesDegeneratesToSingleDes) {
  // EDE with K1 = K2 = K3 is single DES — run the FIPS-81 vector through it.
  const auto ks3 = des::triple_key_schedule(0x0123456789abcdefULL,
                                            0x0123456789abcdefULL,
                                            0x0123456789abcdefULL);
  EXPECT_EQ(des::encrypt_block_3des(0x4e6f772069732074ULL, ks3),
            0x3fa40e8a984d4815ULL);
  EXPECT_EQ(des::decrypt_block_3des(0x3fa40e8a984d4815ULL, ks3),
            0x4e6f772069732074ULL);
}

// Same zero-IV single-block identity for the DES/3DES multi-buffer kernels:
// every NBS vector in every lane position, decoy single-DES lanes on the
// other vectors, plus one 3DES lane running the degenerate K1=K2=K3 FIPS-81
// vector — which also proves single and triple lanes coexist in one batch.
TEST(KatDes, Fips81MultiBufferEveryLanePosition) {
  constexpr int kLanes = 8;
  auto store_be64 = [](std::uint64_t v, std::uint8_t* out) {
    for (int i = 0; i < 8; ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
    }
  };
  auto load_be64 = [](const std::uint8_t* in) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | in[i];
    return v;
  };
  std::vector<des::KeySchedule> schedules;
  for (const DesVector& v : kDesVectors) {
    schedules.push_back(des::key_schedule(v.key));
  }
  const auto ks3 = des::triple_key_schedule(0x0123456789abcdefULL,
                                            0x0123456789abcdefULL,
                                            0x0123456789abcdefULL);
  const int n = static_cast<int>(std::size(kDesVectors));
  for (int vi = 0; vi < n; ++vi) {
    for (int pos = 0; pos < kLanes; ++pos) {
      std::uint8_t in[kLanes][8], out[kLanes][8], chain[kLanes][8];
      des_mb::CbcLane lanes[kLanes];
      std::uint64_t want_ct[kLanes], want_pt[kLanes];
      const int triple_lane = (pos + 1) % kLanes;  // never the lane under test
      for (int l = 0; l < kLanes; ++l) {
        std::fill(chain[l], chain[l] + 8, 0);
        if (l == triple_lane) {
          // EDE with K1=K2=K3 degenerates to single DES (FIPS-81 sample).
          store_be64(0x4e6f772069732074ULL, in[l]);
          lanes[l] = {nullptr, &ks3, in[l], out[l], 1, chain[l]};
          want_ct[l] = 0x3fa40e8a984d4815ULL;
          want_pt[l] = 0x4e6f772069732074ULL;
          continue;
        }
        const int which = l == pos ? vi : (vi + 1 + l) % n;
        const DesVector& v = kDesVectors[which];
        store_be64(v.plaintext, in[l]);
        lanes[l] = {&schedules[which], nullptr, in[l], out[l], 1, chain[l]};
        want_ct[l] = v.ciphertext;
        want_pt[l] = v.plaintext;
      }
      des_mb::encrypt_cbc(lanes, kLanes, kLanes);
      for (int l = 0; l < kLanes; ++l) {
        EXPECT_EQ(load_be64(out[l]), want_ct[l])
            << "encrypt vector " << vi << " at lane " << pos << ", lane " << l;
      }
      for (int l = 0; l < kLanes; ++l) {
        std::copy(out[l], out[l] + 8, in[l]);
        std::fill(chain[l], chain[l] + 8, 0);
      }
      des_mb::decrypt_cbc(lanes, kLanes, kLanes);
      for (int l = 0; l < kLanes; ++l) {
        EXPECT_EQ(load_be64(out[l]), want_pt[l])
            << "decrypt vector " << vi << " at lane " << pos << ", lane " << l;
      }
    }
  }
}

TEST(KatDes, Fips81IssKernelBaseAndTie) {
  kernels::Machine bm = kernels::make_des_machine(false);
  kernels::Machine tm = kernels::make_des_machine(true);
  kernels::DesKernel bk(bm, false), tk(tm, true);
  for (const DesVector& v : kDesVectors) {
    bk.set_key(v.key);
    tk.set_key(v.key);
    EXPECT_EQ(bk.encrypt_block(v.plaintext), v.ciphertext);
    EXPECT_EQ(tk.encrypt_block(v.plaintext), v.ciphertext);
    EXPECT_EQ(bk.decrypt_block(v.ciphertext), v.plaintext);
    EXPECT_EQ(tk.decrypt_block(v.ciphertext), v.plaintext);
  }
}

// --- SHA-1 (FIPS 180) ------------------------------------------------------

TEST(KatSha1, Fips180Examples) {
  EXPECT_EQ(hex(Sha1::hash(ascii("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(hex(Sha1::hash(ascii(""))),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(hex(Sha1::hash(ascii(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(KatSha1, MillionAs) {
  std::vector<std::uint8_t> data(1000000, 'a');
  EXPECT_EQ(hex(Sha1::hash(data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(KatSha1, IssKernelMatchesFips180) {
  kernels::Machine m = kernels::make_sha1_machine();
  kernels::Sha1Kernel k(m);
  EXPECT_EQ(hex(k.hash(ascii("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(hex(k.hash(ascii(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

// --- MD5 (RFC 1321 A.5) ----------------------------------------------------

TEST(KatMd5, Rfc1321TestSuite) {
  const std::pair<const char*, const char*> vectors[] = {
      {"", "d41d8cd98f00b204e9800998ecf8427e"},
      {"a", "0cc175b9c0f1b6a831c399e269772661"},
      {"abc", "900150983cd24fb0d6963f7d28e17f72"},
      {"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
      {"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"},
      {"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
       "d174ab98d277d9f5a5611c2c9f419d9f"},
      {"1234567890123456789012345678901234567890123456789012345678901234567890"
       "1234567890",
       "57edf4a22be3c955ac49da2e2107b67a"},
  };
  for (const auto& [msg, want] : vectors) {
    EXPECT_EQ(hex(Md5::hash(ascii(msg))), want) << "msg=\"" << msg << "\"";
  }
}

// --- HMAC (RFC 2202) -------------------------------------------------------

TEST(KatHmac, Rfc2202Md5) {
  EXPECT_EQ(to_hex(hmac_md5(std::vector<std::uint8_t>(16, 0x0b),
                            ascii("Hi There"))),
            "9294727a3638bb1c13f48ef8158bfc9d");
  EXPECT_EQ(to_hex(hmac_md5(ascii("Jefe"),
                            ascii("what do ya want for nothing?"))),
            "750c783e6ab0b503eaa86e310a5db738");
  EXPECT_EQ(to_hex(hmac_md5(std::vector<std::uint8_t>(16, 0xaa),
                            std::vector<std::uint8_t>(50, 0xdd))),
            "56be34521d144c88dbb8c733f0e8b3f6");
  EXPECT_EQ(to_hex(hmac_md5(from_hex("0102030405060708090a0b0c0d0e0f10111213"
                                     "141516171819"),
                            std::vector<std::uint8_t>(50, 0xcd))),
            "697eaf0aca3a3aea3a75164746ffaa79");
  // Test 6: key larger than one hash block.
  EXPECT_EQ(to_hex(hmac_md5(
                std::vector<std::uint8_t>(80, 0xaa),
                ascii("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "6b1ab7fe4bd7bf8f0b62e6ce61b9d0cd");
}

TEST(KatHmac, Rfc2202Sha1) {
  EXPECT_EQ(to_hex(hmac_sha1(std::vector<std::uint8_t>(20, 0x0b),
                             ascii("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
  EXPECT_EQ(to_hex(hmac_sha1(ascii("Jefe"),
                             ascii("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
  EXPECT_EQ(to_hex(hmac_sha1(std::vector<std::uint8_t>(20, 0xaa),
                             std::vector<std::uint8_t>(50, 0xdd))),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
  EXPECT_EQ(to_hex(hmac_sha1(from_hex("0102030405060708090a0b0c0d0e0f1011121"
                                      "3141516171819"),
                             std::vector<std::uint8_t>(50, 0xcd))),
            "4c9007f4026250c6bc8414f9bf50c86c2d7235da");
  EXPECT_EQ(to_hex(hmac_sha1(
                std::vector<std::uint8_t>(80, 0xaa),
                ascii("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

}  // namespace
}  // namespace wsp
