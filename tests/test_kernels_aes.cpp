// AES-128 XR32 kernels (base, TIE-partial, TIE-full) vs. the host
// implementation, plus the speedup ordering.
#include <gtest/gtest.h>

#include "crypto/aes.h"
#include "kernels/aes_kernel.h"
#include "support/random.h"

namespace wsp {
namespace {

using kernels::AesKernel;
using kernels::AesKernelVariant;
using kernels::Machine;
using kernels::make_aes_machine;

class AesKernelTest : public ::testing::TestWithParam<AesKernelVariant> {
 protected:
  Machine machine_ = make_aes_machine(GetParam());
  AesKernel kernel_{machine_, GetParam()};
};

TEST_P(AesKernelTest, EncryptBlockMatchesHost) {
  Rng rng(211);
  for (int i = 0; i < 10; ++i) {
    const auto key = rng.bytes(i % 2 ? 16 : 32);
    kernel_.set_key(key);
    const auto ks = aes::key_schedule(key);
    for (int j = 0; j < 5; ++j) {
      const auto block = rng.bytes(16);
      std::uint8_t expect[16];
      aes::encrypt_block(block.data(), expect, ks);
      const auto got = kernel_.encrypt_block(block);
      EXPECT_EQ(got, std::vector<std::uint8_t>(expect, expect + 16));
    }
  }
}

TEST_P(AesKernelTest, Fips197Vector) {
  const std::vector<std::uint8_t> key = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05,
                                         0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b,
                                         0x0c, 0x0d, 0x0e, 0x0f};
  const std::vector<std::uint8_t> plain = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55,
                                           0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb,
                                           0xcc, 0xdd, 0xee, 0xff};
  const std::vector<std::uint8_t> cipher = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                                            0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                                            0x70, 0xb4, 0xc5, 0x5a};
  kernel_.set_key(key);
  EXPECT_EQ(kernel_.encrypt_block(plain), cipher);
}

TEST_P(AesKernelTest, EcbMatchesHost) {
  Rng rng(212);
  const auto key = rng.bytes(16);
  kernel_.set_key(key);
  const auto ks = aes::key_schedule(key);
  const auto data = rng.bytes(96);
  EXPECT_EQ(kernel_.encrypt_ecb(data), aes::encrypt_ecb(data, ks));
}

TEST_P(AesKernelTest, Aes192And256MatchHost) {
  Rng rng(214);
  for (std::size_t klen : {24u, 32u}) {
    const auto key = rng.bytes(klen);
    kernel_.set_key(key);
    const auto ks = aes::key_schedule(key);
    const auto data = rng.bytes(48);
    EXPECT_EQ(kernel_.encrypt_ecb(data), aes::encrypt_ecb(data, ks))
        << "klen=" << klen;
  }
}

TEST_P(AesKernelTest, RejectsBadKeyLengths) {
  EXPECT_THROW(kernel_.set_key(std::vector<std::uint8_t>(15)), std::invalid_argument);
  EXPECT_THROW(kernel_.set_key(std::vector<std::uint8_t>(33)), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, AesKernelTest,
    ::testing::Values(AesKernelVariant::kBase, AesKernelVariant::kTiePartial,
                      AesKernelVariant::kTieFull),
    [](const ::testing::TestParamInfo<AesKernelVariant>& info) {
      switch (info.param) {
        case AesKernelVariant::kBase: return "base";
        case AesKernelVariant::kTiePartial: return "tie_partial";
        case AesKernelVariant::kTieFull: return "tie_full";
      }
      return "?";
    });

TEST(AesKernelPerf, VariantsAreStrictlyOrdered) {
  Rng rng(213);
  const auto key = rng.bytes(16);
  const auto data = rng.bytes(160);
  std::uint64_t cycles[3] = {};
  int idx = 0;
  for (auto variant : {AesKernelVariant::kBase, AesKernelVariant::kTiePartial,
                       AesKernelVariant::kTieFull}) {
    Machine m = make_aes_machine(variant);
    AesKernel k(m, variant);
    k.set_key(key);
    k.encrypt_ecb(data, &cycles[idx++]);
  }
  EXPECT_GT(cycles[0], cycles[1]);  // base slower than partial TIE
  EXPECT_GT(cycles[1], cycles[2]);  // partial slower than full round unit
  const double partial_speedup =
      static_cast<double>(cycles[0]) / static_cast<double>(cycles[1]);
  EXPECT_GT(partial_speedup, 3.0);
}

}  // namespace
}  // namespace wsp
