// Kernels under the cache timing model: functional results must be
// identical to the perfect-cache machine, and cycle counts must be
// monotone in cache quality.
#include <gtest/gtest.h>

#include "crypto/des.h"
#include "kernels/des_kernel.h"
#include "kernels/mpn_kernels.h"
#include "support/random.h"

namespace wsp {
namespace {

sim::CpuConfig tiny_caches() {
  sim::CpuConfig cfg;
  cfg.model_caches = true;
  cfg.icache = sim::CacheConfig{512, 16, 1, 25};
  cfg.dcache = sim::CacheConfig{512, 16, 1, 25};
  return cfg;
}

TEST(CachedKernels, ResultsUnchangedByCacheModel) {
  Rng rng(601);
  const std::uint64_t key = rng.next_u64();
  const auto data = rng.bytes(128);
  kernels::Machine perfect = kernels::make_des_machine(false);
  kernels::Machine cached = kernels::make_des_machine(false, tiny_caches());
  kernels::DesKernel kp(perfect, false), kc(cached, false);
  kp.set_key(key);
  kc.set_key(key);
  EXPECT_EQ(kp.encrypt_ecb(data), kc.encrypt_ecb(data));
}

TEST(CachedKernels, MissesCostCycles) {
  Rng rng(602);
  const std::uint64_t key = rng.next_u64();
  const auto data = rng.bytes(256);
  std::uint64_t cycles_perfect = 0, cycles_tiny = 0;
  {
    kernels::Machine m = kernels::make_des_machine(false);
    kernels::DesKernel k(m, false);
    k.set_key(key);
    k.encrypt_ecb(data, &cycles_perfect);
  }
  {
    kernels::Machine m = kernels::make_des_machine(false, tiny_caches());
    kernels::DesKernel k(m, false);
    k.set_key(key);
    k.encrypt_ecb(data, &cycles_tiny);
    EXPECT_GT(m.cpu().dcache()->misses(), 0u);
  }
  EXPECT_GT(cycles_tiny, cycles_perfect);
}

TEST(CachedKernels, BiggerCachesNeverSlower) {
  Rng rng(603);
  const std::size_t n = 48;
  std::vector<std::uint32_t> a(n), b(n);
  for (auto& x : a) x = rng.next_u32();
  for (auto& x : b) x = rng.next_u32();
  std::uint64_t prev = ~0ull;
  for (std::size_t kib : {1u, 4u, 16u}) {
    sim::CpuConfig cfg;
    cfg.model_caches = true;
    cfg.icache = sim::CacheConfig{kib * 1024, 16, 2, 20};
    cfg.dcache = sim::CacheConfig{kib * 1024, 16, 2, 20};
    kernels::Machine m = kernels::make_mpn_machine({}, cfg);
    std::vector<std::uint32_t> r;
    const auto res = kernels::run_add_n(m, r, a, b);
    EXPECT_LE(res.cycles, prev) << kib << " KiB";
    prev = res.cycles;
  }
}

TEST(CachedKernels, StatsExposedThroughCpu) {
  kernels::Machine m = kernels::make_mpn_machine({}, tiny_caches());
  Rng rng(604);
  std::vector<std::uint32_t> a(16), b(16), r;
  for (auto& x : a) x = rng.next_u32();
  for (auto& x : b) x = rng.next_u32();
  kernels::run_add_n(m, r, a, b);
  ASSERT_NE(m.cpu().icache(), nullptr);
  ASSERT_NE(m.cpu().dcache(), nullptr);
  EXPECT_GT(m.cpu().icache()->hits() + m.cpu().icache()->misses(), 0u);
}

TEST(CachedKernels, PerfectMachineHasNoCacheObjects) {
  kernels::Machine m = kernels::make_mpn_machine();
  EXPECT_EQ(m.cpu().icache(), nullptr);
  EXPECT_EQ(m.cpu().dcache(), nullptr);
}

}  // namespace
}  // namespace wsp
