// DES/3DES XR32 kernels (base and TIE) vs. the host implementation, plus
// the cycle-count ordering the Table 1 experiment depends on.
#include <gtest/gtest.h>

#include "crypto/des.h"
#include "kernels/des_kernel.h"
#include "support/random.h"

namespace wsp {
namespace {

using kernels::DesKernel;
using kernels::Machine;
using kernels::make_des_machine;

class DesKernelTest : public ::testing::TestWithParam<bool> {
 protected:
  Machine machine_ = make_des_machine(GetParam());
  DesKernel kernel_{machine_, GetParam()};
};

TEST_P(DesKernelTest, EncryptBlockMatchesHost) {
  Rng rng(201);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t key = rng.next_u64();
    kernel_.set_key(key);
    const auto ks = des::key_schedule(key);
    for (int j = 0; j < 5; ++j) {
      const std::uint64_t block = rng.next_u64();
      EXPECT_EQ(kernel_.encrypt_block(block), des::encrypt_block(block, ks))
          << (GetParam() ? "tie" : "base");
    }
  }
}

TEST_P(DesKernelTest, DecryptInvertsEncrypt) {
  Rng rng(202);
  kernel_.set_key(rng.next_u64());
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t block = rng.next_u64();
    EXPECT_EQ(kernel_.decrypt_block(kernel_.encrypt_block(block)), block);
  }
}

TEST_P(DesKernelTest, EcbMatchesHost) {
  Rng rng(203);
  const std::uint64_t key = rng.next_u64();
  kernel_.set_key(key);
  const auto ks = des::key_schedule(key);
  const auto data = rng.bytes(64);
  EXPECT_EQ(kernel_.encrypt_ecb(data), des::encrypt_ecb(data, ks));
}

TEST_P(DesKernelTest, TripleDesMatchesHost) {
  Rng rng(204);
  const std::uint64_t k1 = rng.next_u64(), k2 = rng.next_u64(), k3 = rng.next_u64();
  kernel_.set_3des_keys(k1, k2, k3);
  const auto ks = des::triple_key_schedule(k1, k2, k3);
  const auto data = rng.bytes(40);
  std::vector<std::uint8_t> expect(data.size());
  for (std::size_t i = 0; i < data.size(); i += 8) {
    des::store_be64(
        des::encrypt_block_3des(des::load_be64(data.data() + i), ks),
        expect.data() + i);
  }
  EXPECT_EQ(kernel_.encrypt_ecb_3des(data), expect);
}

INSTANTIATE_TEST_SUITE_P(BaseAndTie, DesKernelTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "tie" : "base";
                         });

TEST(DesKernelPerf, TieIsMuchFasterThanBase) {
  Rng rng(205);
  const std::uint64_t key = rng.next_u64();
  const auto data = rng.bytes(256);

  Machine base_m = make_des_machine(false);
  DesKernel base(base_m, false);
  base.set_key(key);
  std::uint64_t base_cycles = 0;
  base.encrypt_ecb(data, &base_cycles);

  Machine tie_m = make_des_machine(true);
  DesKernel tie(tie_m, true);
  tie.set_key(key);
  std::uint64_t tie_cycles = 0;
  tie.encrypt_ecb(data, &tie_cycles);

  const double speedup = static_cast<double>(base_cycles) /
                         static_cast<double>(tie_cycles);
  // Paper Table 1 reports 31.0X for DES; the shape requirement is a large
  // double-digit speedup.
  EXPECT_GT(speedup, 10.0) << "base=" << base_cycles << " tie=" << tie_cycles;
  EXPECT_LT(speedup, 200.0);
}

TEST(DesKernelPerf, CyclesPerByteAreBlockSizeIndependent) {
  Rng rng(206);
  Machine m = make_des_machine(false);
  DesKernel k(m, false);
  k.set_key(rng.next_u64());
  std::uint64_t c64 = 0, c256 = 0;
  k.encrypt_ecb(rng.bytes(64), &c64);
  k.encrypt_ecb(rng.bytes(256), &c256);
  const double per64 = static_cast<double>(c64) / 64.0;
  const double per256 = static_cast<double>(c256) / 256.0;
  EXPECT_NEAR(per64, per256, per64 * 0.05);
}

}  // namespace
}  // namespace wsp
