// Montgomery / division modular-multiplication kernels and the ISS modexp
// drivers, checked against the Mpz reference, plus the call-graph structure
// (paper Fig. 4) and base-vs-TIE performance ordering.
#include <gtest/gtest.h>

#include "kernels/modexp_kernel.h"
#include "mp/prime.h"
#include "support/random.h"

namespace wsp {
namespace {

using kernels::IssModexp;
using kernels::Machine;
using kernels::make_modexp_machine;
using kernels::MpnTieConfig;

Mpz normalized_odd_modulus(Rng& rng, std::size_t bits) {
  // Top bit set (limb-normalized) and odd.
  Mpz m = random_bits(bits, rng);
  if (m.is_even()) m = m + Mpz(1);
  return m;
}

TEST(IssModexpKernel, MontMulMatchesReference) {
  Machine m = make_modexp_machine();
  IssModexp mx(m);
  Rng rng(301);
  const Mpz mod = normalized_odd_modulus(rng, 256);
  for (int i = 0; i < 10; ++i) {
    const Mpz a = random_below(mod, rng);
    const Mpz b = random_below(mod, rng);
    const auto res = mx.mont_mul_once(a, b, mod);
    // mont_mul computes a*b*R^{-1} mod n with R = 2^(32*k).
    const Mpz r_inv = Mpz::invmod(Mpz(1).lshift(256), mod);
    EXPECT_EQ(res.result, (a * b * r_inv).mod(mod)) << i;
    EXPECT_GT(res.cycles, 0u);
  }
}

TEST(IssModexpKernel, PowmBaseMatchesReference) {
  Machine m = make_modexp_machine();
  IssModexp mx(m);
  Rng rng(302);
  const Mpz mod = normalized_odd_modulus(rng, 192);
  for (int i = 0; i < 5; ++i) {
    const Mpz base = random_below(mod, rng);
    const Mpz exp = random_bits(64, rng);
    const auto res = mx.powm_base(base, exp, mod);
    EXPECT_EQ(res.result, Mpz::powm(base, exp, mod)) << i;
  }
}

TEST(IssModexpKernel, PowmBaseRequiresNormalizedModulus) {
  Machine m = make_modexp_machine();
  IssModexp mx(m);
  EXPECT_THROW(mx.powm_base(Mpz(2), Mpz(5), Mpz(1000001)), std::invalid_argument);
}

TEST(IssModexpKernel, PowmMontMatchesReferenceAcrossWindows) {
  Machine m = make_modexp_machine();
  IssModexp mx(m);
  Rng rng(303);
  const Mpz mod = normalized_odd_modulus(rng, 192);
  const Mpz base = random_below(mod, rng);
  const Mpz exp = random_bits(96, rng);
  const Mpz expect = Mpz::powm(base, exp, mod);
  for (unsigned w = 1; w <= 5; ++w) {
    const auto res = mx.powm_mont(base, exp, mod, w);
    EXPECT_EQ(res.result, expect) << "window " << w;
  }
}

TEST(IssModexpKernel, PowmMontHandlesEdgeExponents) {
  Machine m = make_modexp_machine();
  IssModexp mx(m);
  Rng rng(304);
  const Mpz mod = normalized_odd_modulus(rng, 96);
  EXPECT_EQ(mx.powm_mont(Mpz(7), Mpz(0), mod, 4).result, Mpz(1));
  EXPECT_EQ(mx.powm_mont(Mpz(7), Mpz(1), mod, 4).result, Mpz(7));
  const Mpz base = random_below(mod, rng);
  EXPECT_EQ(mx.powm_mont(base, Mpz(2), mod, 3).result, (base * base).mod(mod));
}

TEST(IssModexpKernel, PowmBarrettMatchesReference) {
  Machine m = make_modexp_machine();
  IssModexp mx(m);
  Rng rng(310);
  // Works for even and odd, normalized and unnormalized moduli.
  for (std::size_t bits : {96u, 150u, 192u}) {
    const Mpz mod = random_bits(bits, rng);
    const Mpz base = random_below(mod, rng);
    const Mpz exp = random_bits(64, rng);
    for (unsigned w : {1u, 4u}) {
      const auto res = mx.powm_barrett(base, exp, mod, w);
      EXPECT_EQ(res.result, Mpz::powm(base, exp, mod))
          << "bits=" << bits << " w=" << w;
    }
  }
}

TEST(IssModexpKernel, PowmMontSosMatchesReference) {
  Machine m = make_modexp_machine();
  IssModexp mx(m);
  Rng rng(312);
  const Mpz mod = normalized_odd_modulus(rng, 192);
  const Mpz base = random_below(mod, rng);
  const Mpz exp = random_bits(96, rng);
  const Mpz expect = Mpz::powm(base, exp, mod);
  for (unsigned w : {1u, 3u, 5u}) {
    EXPECT_EQ(mx.powm_mont_sos(base, exp, mod, w).result, expect) << "w=" << w;
  }
  // SOS does the same multiplications in a different schedule: correct but
  // slower than CIOS's interleaved form on this core (the exploration's
  // finding).
  const auto sos = mx.powm_mont_sos(base, exp, mod, 4);
  const auto cios = mx.powm_mont(base, exp, mod, 4);
  EXPECT_EQ(sos.result, cios.result);
}

TEST(IssModexpKernel, BarrettAgreesWithMontOnOddModuli) {
  Machine m = make_modexp_machine();
  IssModexp mx(m);
  Rng rng(311);
  const Mpz mod = normalized_odd_modulus(rng, 160);
  const Mpz base = random_below(mod, rng);
  const Mpz exp = random_bits(80, rng);
  EXPECT_EQ(mx.powm_barrett(base, exp, mod, 3).result,
            mx.powm_mont(base, exp, mod, 3).result);
}

TEST(IssModexpKernel, RsaCrtMatchesHostRsa) {
  Machine m = make_modexp_machine();
  IssModexp mx(m);
  Rng rng(305);
  const auto key = rsa::generate_key(256, rng);
  ModexpEngine engine{ModexpConfig{}};
  for (int i = 0; i < 3; ++i) {
    const Mpz msg = random_below(key.n, rng);
    const Mpz c = rsa::public_op(msg, key.public_key(), engine);
    const auto res = mx.rsa_crt(c, key, 4);
    EXPECT_EQ(res.result, msg) << i;
  }
}

TEST(IssModexpKernel, CallGraphShowsAddmulUnderMontMul) {
  Machine m = make_modexp_machine();
  IssModexp mx(m);
  Rng rng(306);
  const Mpz mod = normalized_odd_modulus(rng, 128);  // 4 limbs
  m.cpu().reset_stats();
  mx.mont_mul_once(Mpz(12345), Mpz(67890), mod);
  const auto& edges = m.cpu().profiler().edges();
  // CIOS: 2 addmul_1 sweeps per limb of b.
  ASSERT_TRUE(edges.count({"mont_mul", "mpn_addmul_1"}));
  EXPECT_EQ(edges.at({"mont_mul", "mpn_addmul_1"}), 8u);
}

TEST(IssModexpPerf, MontBeatsDivisionBaseline) {
  Machine m = make_modexp_machine();
  IssModexp mx(m);
  Rng rng(307);
  const Mpz mod = normalized_odd_modulus(rng, 256);
  const Mpz base = random_below(mod, rng);
  const Mpz exp = random_bits(128, rng);
  const auto base_res = mx.powm_base(base, exp, mod);
  const auto mont_res = mx.powm_mont(base, exp, mod, 4);
  EXPECT_EQ(base_res.result, mont_res.result);
  EXPECT_GT(base_res.cycles, mont_res.cycles);
}

TEST(IssModexpPerf, MacCustomInstructionsAccelerateMont) {
  Rng rng(308);
  const Mpz mod = normalized_odd_modulus(rng, 512);
  const Mpz base = random_below(mod, rng);
  const Mpz exp = random_bits(64, rng);
  Machine base_m = make_modexp_machine();
  Machine tie_m = make_modexp_machine(MpnTieConfig{8, 4});
  IssModexp mx_base(base_m), mx_tie(tie_m);
  const auto r1 = mx_base.powm_mont(base, exp, mod, 4);
  const auto r2 = mx_tie.powm_mont(base, exp, mod, 4);
  EXPECT_EQ(r1.result, r2.result);
  EXPECT_GT(static_cast<double>(r1.cycles) / static_cast<double>(r2.cycles), 1.8)
      << "base=" << r1.cycles << " tie=" << r2.cycles;
}

TEST(IssModexpPerf, LargerWindowsReduceCycles) {
  Machine m = make_modexp_machine();
  IssModexp mx(m);
  Rng rng(309);
  const Mpz mod = normalized_odd_modulus(rng, 256);
  const Mpz base = random_below(mod, rng);
  const Mpz exp = random_bits(256, rng);
  const auto w1 = mx.powm_mont(base, exp, mod, 1);
  const auto w4 = mx.powm_mont(base, exp, mod, 4);
  EXPECT_EQ(w1.result, w4.result);
  EXPECT_GT(w1.cycles, w4.cycles);
}

}  // namespace
}  // namespace wsp
