// XR32 mpn kernels vs. the host mpn library: every routine, base form and
// every TIE width, on random inputs — and the performance ordering the A-D
// curves depend on (wider datapaths => fewer cycles).
#include <gtest/gtest.h>

#include "kernels/mpn_kernels.h"
#include "mp/mpn.h"
#include "support/random.h"

namespace wsp {
namespace {

using kernels::Machine;
using kernels::make_mpn_machine;
using kernels::MpnTieConfig;

std::vector<std::uint32_t> random_words(Rng& rng, std::size_t n) {
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) x = rng.next_u32();
  return v;
}

struct TieParam {
  MpnTieConfig tie;
  const char* label;
};

class MpnKernelTest : public ::testing::TestWithParam<TieParam> {
 protected:
  Machine machine_ = make_mpn_machine(GetParam().tie);
};

TEST_P(MpnKernelTest, AddNMatchesHost) {
  Rng rng(101);
  for (std::size_t n : {1u, 2u, 3u, 7u, 8u, 15u, 16u, 31u, 32u, 33u}) {
    const auto a = random_words(rng, n);
    const auto b = random_words(rng, n);
    std::vector<std::uint32_t> expect(n), got;
    const std::uint32_t ec = mpn::add_n(expect.data(), a.data(), b.data(), n);
    const auto res = kernels::run_add_n(machine_, got, a, b);
    EXPECT_EQ(got, expect) << GetParam().label << " n=" << n;
    EXPECT_EQ(res.ret, ec) << GetParam().label << " n=" << n;
  }
}

TEST_P(MpnKernelTest, SubNMatchesHost) {
  Rng rng(102);
  for (std::size_t n : {1u, 4u, 9u, 16u, 30u}) {
    const auto a = random_words(rng, n);
    const auto b = random_words(rng, n);
    std::vector<std::uint32_t> expect(n), got;
    const std::uint32_t eb = mpn::sub_n(expect.data(), a.data(), b.data(), n);
    const auto res = kernels::run_sub_n(machine_, got, a, b);
    EXPECT_EQ(got, expect) << GetParam().label << " n=" << n;
    EXPECT_EQ(res.ret, eb);
  }
}

TEST_P(MpnKernelTest, AddmulMatchesHost) {
  Rng rng(103);
  for (std::size_t n : {1u, 2u, 5u, 8u, 13u, 16u, 32u, 37u}) {
    const auto a = random_words(rng, n);
    const std::uint32_t b = rng.next_u32();
    std::vector<std::uint32_t> rp = random_words(rng, n);
    std::vector<std::uint32_t> expect = rp;
    const std::uint32_t ec = mpn::addmul_1(expect.data(), a.data(), n, b);
    std::vector<std::uint32_t> got = rp;
    const auto res = kernels::run_addmul_1(machine_, got, a, b);
    EXPECT_EQ(got, expect) << GetParam().label << " n=" << n;
    EXPECT_EQ(res.ret, ec);
  }
}

TEST_P(MpnKernelTest, CarryChainsAcrossChunks) {
  // All-ones + 1 propagates a carry through every limb and chunk boundary.
  const std::size_t n = 24;
  std::vector<std::uint32_t> a(n, 0xffffffffu), b(n, 0);
  b[0] = 1;
  std::vector<std::uint32_t> got;
  const auto res = kernels::run_add_n(machine_, got, a, b);
  EXPECT_EQ(res.ret, 1u) << GetParam().label;
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(got[i], 0u) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Widths, MpnKernelTest,
    ::testing::Values(TieParam{{0, 0}, "base"}, TieParam{{2, 0}, "add2"},
                      TieParam{{4, 1}, "add4_mac1"}, TieParam{{8, 2}, "add8_mac2"},
                      TieParam{{16, 4}, "add16_mac4"}),
    [](const ::testing::TestParamInfo<TieParam>& info) { return info.param.label; });

class MpnBaseKernelTest : public ::testing::Test {
 protected:
  Machine machine_ = make_mpn_machine();
};

TEST_F(MpnBaseKernelTest, Mul1MatchesHost) {
  Rng rng(104);
  for (std::size_t n : {1u, 6u, 17u, 32u}) {
    const auto a = random_words(rng, n);
    const std::uint32_t b = rng.next_u32();
    std::vector<std::uint32_t> expect(n), got;
    const std::uint32_t ec = mpn::mul_1(expect.data(), a.data(), n, b);
    const auto res = kernels::run_mul_1(machine_, got, a, b);
    EXPECT_EQ(got, expect);
    EXPECT_EQ(res.ret, ec);
  }
}

TEST_F(MpnBaseKernelTest, SubmulMatchesHost) {
  Rng rng(105);
  for (std::size_t n : {1u, 5u, 16u, 29u}) {
    const auto a = random_words(rng, n);
    const std::uint32_t b = rng.next_u32();
    std::vector<std::uint32_t> rp = random_words(rng, n);
    std::vector<std::uint32_t> expect = rp;
    const std::uint32_t eb = mpn::submul_1(expect.data(), a.data(), n, b);
    std::vector<std::uint32_t> got = rp;
    const auto res = kernels::run_submul_1(machine_, got, a, b);
    EXPECT_EQ(got, expect);
    EXPECT_EQ(res.ret, eb);
  }
}

TEST_F(MpnBaseKernelTest, CmpMatchesHost) {
  Rng rng(106);
  for (int i = 0; i < 30; ++i) {
    const std::size_t n = 1 + rng.below(12);
    auto a = random_words(rng, n);
    auto b = rng.below(2) ? a : random_words(rng, n);
    const int expect = mpn::cmp(a.data(), b.data(), n);
    const auto res = kernels::run_cmp(machine_, a, b);
    EXPECT_EQ(static_cast<std::int32_t>(res.ret), expect);
  }
}

TEST_F(MpnBaseKernelTest, ShiftsMatchHost) {
  Rng rng(107);
  for (unsigned count : {1u, 7u, 16u, 31u}) {
    const std::size_t n = 11;
    const auto a = random_words(rng, n);
    std::vector<std::uint32_t> el(n), er(n), gl, gr;
    const std::uint32_t outl = mpn::lshift(el.data(), a.data(), n, count);
    const std::uint32_t outr = mpn::rshift(er.data(), a.data(), n, count);
    const auto rl = kernels::run_lshift(machine_, gl, a, count);
    const auto rr = kernels::run_rshift(machine_, gr, a, count);
    EXPECT_EQ(gl, el) << count;
    EXPECT_EQ(rl.ret, outl) << count;
    EXPECT_EQ(gr, er) << count;
    EXPECT_EQ(rr.ret, outr) << count;
  }
}

TEST_F(MpnBaseKernelTest, Div2by1MatchesHardwareDivision) {
  Rng rng(108);
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t d = rng.next_u32() | 0x80000000u;  // normalized
    const std::uint32_t hi = static_cast<std::uint32_t>(rng.below(d));
    const std::uint32_t lo = rng.next_u32();
    const std::uint64_t u = (static_cast<std::uint64_t>(hi) << 32) | lo;
    const auto res = kernels::run_div_2by1(machine_, hi, lo, d);
    EXPECT_EQ(res.ret, static_cast<std::uint32_t>(u / d)) << i;
  }
}

TEST_F(MpnBaseKernelTest, DivremMatchesHost) {
  Rng rng(109);
  for (int i = 0; i < 40; ++i) {
    const std::size_t dn = 1 + rng.below(5);
    const std::size_t un = dn + rng.below(6);
    auto u = random_words(rng, un);
    auto d = random_words(rng, dn);
    d[dn - 1] |= 0x80000000u;  // kernel requires a normalized divisor
    std::vector<std::uint32_t> eq(un - dn + 1), er(dn);
    mpn::divrem(eq.data(), er.data(), u.data(), un, d.data(), dn);
    std::vector<std::uint32_t> gq, grem, umut = u;
    kernels::run_divrem_norm(machine_, gq, umut, d, grem);
    EXPECT_EQ(gq, eq) << "iter " << i;
    EXPECT_EQ(grem, er) << "iter " << i;
  }
}

TEST_F(MpnBaseKernelTest, MulMatchesHost) {
  Rng rng(110);
  for (int i = 0; i < 20; ++i) {
    const std::size_t an = 1 + rng.below(10);
    const std::size_t bn = 1 + rng.below(10);
    const auto a = random_words(rng, an);
    const auto b = random_words(rng, bn);
    std::vector<std::uint32_t> expect(an + bn), got;
    mpn::mul_basecase(expect.data(), a.data(), an, b.data(), bn);
    kernels::run_mul(machine_, got, a, b);
    EXPECT_EQ(got, expect) << "iter " << i;
  }
}

TEST(MpnBaseKernelStress, DivremAddBackMatchesHost) {
  // The crafted qhat-overshoot case (see test_mpn.cpp) must take the
  // kernel through its add-back loop and still match the host library.
  Machine m = make_mpn_machine();
  const std::vector<std::uint32_t> u = {0, 0, 0x40000000u};
  const std::vector<std::uint32_t> d = {0xFFFFFFFFu, 0x80000000u};
  std::vector<std::uint32_t> eq(2), er(2);
  mpn::divrem(eq.data(), er.data(), u.data(), 3, d.data(), 2);
  std::vector<std::uint32_t> gq, grem, umut = u;
  kernels::run_divrem_norm(m, gq, umut, d, grem);
  EXPECT_EQ(gq, eq);
  EXPECT_EQ(grem, er);
}

TEST(MpnBaseKernelStress, DivremQhatClampMatchesHost) {
  Machine m = make_mpn_machine();
  const std::vector<std::uint32_t> u = {5, 0xFFFFFFFFu, 0x7FFFFFFFu, 0x80000000u};
  const std::vector<std::uint32_t> d = {1, 0x80000000u};
  std::vector<std::uint32_t> eq(3), er(2);
  mpn::divrem(eq.data(), er.data(), u.data(), 4, d.data(), 2);
  std::vector<std::uint32_t> gq, grem, umut = u;
  kernels::run_divrem_norm(m, gq, umut, d, grem);
  EXPECT_EQ(gq, eq);
  EXPECT_EQ(grem, er);
}

TEST(MpnBaseKernelStress, DivremHostileDivisorSweep) {
  // Divisors shaped to maximize estimate error: top limb just above B/2,
  // second limb saturated.
  Machine m = make_mpn_machine();
  Rng rng(114);
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<std::uint32_t> d = {0xFFFFFFFFu,
                                    0x80000000u | static_cast<std::uint32_t>(rng.below(16))};
    const std::size_t un = 4 + rng.below(3);
    std::vector<std::uint32_t> u(un);
    for (auto& x : u) x = rng.below(4) ? 0xFFFFFFFFu : rng.next_u32();
    if (u[un - 1] >= d[1]) u[un - 1] = d[1] - 1;  // keep q within un-dn+1 limbs
    std::vector<std::uint32_t> eq(un - 1), er(2);
    mpn::divrem(eq.data(), er.data(), u.data(), un, d.data(), 2);
    std::vector<std::uint32_t> gq, grem, umut = u;
    kernels::run_divrem_norm(m, gq, umut, d, grem);
    EXPECT_EQ(gq, eq) << iter;
    EXPECT_EQ(grem, er) << iter;
  }
}

TEST(MpnKernelPerf, WiderAddersAreMonotonicallyFaster) {
  Rng rng(111);
  const std::size_t n = 32;
  const auto a = random_words(rng, n);
  const auto b = random_words(rng, n);
  std::uint64_t prev = ~0ull;
  for (int width : {0, 2, 4, 8, 16}) {
    Machine m = make_mpn_machine(MpnTieConfig{width, 0});
    std::vector<std::uint32_t> r;
    const auto res = kernels::run_add_n(m, r, a, b);
    EXPECT_LT(res.cycles, prev) << "width " << width;
    prev = res.cycles;
  }
}

TEST(MpnKernelPerf, WiderMacsAreMonotonicallyFaster) {
  Rng rng(112);
  const std::size_t n = 32;
  const auto a = random_words(rng, n);
  std::uint64_t prev = ~0ull;
  for (int width : {0, 1, 2, 4}) {
    Machine m = make_mpn_machine(MpnTieConfig{0, width});
    std::vector<std::uint32_t> r(n, 0), got = r;
    const auto res = kernels::run_addmul_1(m, got, a, 0x12345677u);
    EXPECT_LT(res.cycles, prev) << "width " << width;
    prev = res.cycles;
  }
}

TEST(MpnKernelPerf, CyclesScaleLinearlyWithN) {
  // The macro-modeling phase depends on clean linear profiles.
  Machine m = make_mpn_machine();
  Rng rng(113);
  std::vector<double> per_limb;
  for (std::size_t n : {8u, 16u, 32u, 64u}) {
    const auto a = random_words(rng, n);
    const auto b = random_words(rng, n);
    std::vector<std::uint32_t> r;
    const auto res = kernels::run_add_n(m, r, a, b);
    per_limb.push_back(static_cast<double>(res.cycles) / static_cast<double>(n));
  }
  for (std::size_t i = 1; i < per_limb.size(); ++i) {
    EXPECT_NEAR(per_limb[i], per_limb[0], 3.0) << i;
  }
}

}  // namespace
}  // namespace wsp
