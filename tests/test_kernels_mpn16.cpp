// Radix-16 XR32 kernels vs. the host mpn<uint16_t> library, plus the
// radix trade-off the exploration phase depends on: cheaper per-limb loops
// but twice the limbs.
#include <gtest/gtest.h>

#include "kernels/mpn_kernels.h"
#include "macromodel/characterize.h"
#include "mp/mpn.h"
#include "support/random.h"

namespace wsp {
namespace {

using kernels::Machine;
using kernels::make_mpn16_machine;

std::vector<std::uint16_t> random_halfwords(Rng& rng, std::size_t n) {
  std::vector<std::uint16_t> v(n);
  for (auto& x : v) x = static_cast<std::uint16_t>(rng.next_u32());
  return v;
}

class Mpn16KernelTest : public ::testing::Test {
 protected:
  Machine machine_ = make_mpn16_machine();
};

TEST_F(Mpn16KernelTest, AddSubMatchHost) {
  Rng rng(901);
  for (std::size_t n : {1u, 2u, 7u, 16u, 33u, 64u}) {
    const auto a = random_halfwords(rng, n);
    const auto b = random_halfwords(rng, n);
    std::vector<std::uint16_t> es(n), ed(n), gs, gd;
    const std::uint16_t ec = mpn::add_n(es.data(), a.data(), b.data(), n);
    const std::uint16_t eb = mpn::sub_n(ed.data(), a.data(), b.data(), n);
    const auto rs = kernels::run16_add_n(machine_, gs, a, b);
    const auto rd = kernels::run16_sub_n(machine_, gd, a, b);
    EXPECT_EQ(gs, es) << n;
    EXPECT_EQ(rs.ret, ec) << n;
    EXPECT_EQ(gd, ed) << n;
    EXPECT_EQ(rd.ret, eb) << n;
  }
}

TEST_F(Mpn16KernelTest, CarryChainAcrossAllLimbs) {
  const std::size_t n = 40;
  std::vector<std::uint16_t> a(n, 0xffff), b(n, 0);
  b[0] = 1;
  std::vector<std::uint16_t> r;
  const auto res = kernels::run16_add_n(machine_, r, a, b);
  EXPECT_EQ(res.ret, 1u);
  for (auto x : r) EXPECT_EQ(x, 0u);
}

TEST_F(Mpn16KernelTest, MulAddmulSubmulMatchHost) {
  Rng rng(902);
  for (std::size_t n : {1u, 5u, 17u, 48u}) {
    const auto a = random_halfwords(rng, n);
    const std::uint16_t b = static_cast<std::uint16_t>(rng.next_u32() | 1);
    std::vector<std::uint16_t> em(n), gm;
    const std::uint16_t cm = mpn::mul_1(em.data(), a.data(), n, b);
    EXPECT_EQ(kernels::run16_mul_1(machine_, gm, a, b).ret, cm) << n;
    EXPECT_EQ(gm, em) << n;

    std::vector<std::uint16_t> rp = random_halfwords(rng, n);
    std::vector<std::uint16_t> ea = rp, ga = rp;
    const std::uint16_t ca = mpn::addmul_1(ea.data(), a.data(), n, b);
    EXPECT_EQ(kernels::run16_addmul_1(machine_, ga, a, b).ret, ca) << n;
    EXPECT_EQ(ga, ea) << n;

    std::vector<std::uint16_t> esv = rp, gsv = rp;
    const std::uint16_t cs = mpn::submul_1(esv.data(), a.data(), n, b);
    EXPECT_EQ(kernels::run16_submul_1(machine_, gsv, a, b).ret, cs) << n;
    EXPECT_EQ(gsv, esv) << n;
  }
}

TEST_F(Mpn16KernelTest, ScalarAddSubMatchHost) {
  Rng rng(903);
  const std::size_t n = 9;
  const auto a = random_halfwords(rng, n);
  const std::uint16_t b = 0xfffe;
  std::vector<std::uint16_t> ea(n), es(n), ga, gs;
  const std::uint16_t ca = mpn::add_1(ea.data(), a.data(), n, b);
  const std::uint16_t cs = mpn::sub_1(es.data(), a.data(), n, b);
  EXPECT_EQ(kernels::run16_add_1(machine_, ga, a, b).ret, ca);
  EXPECT_EQ(ga, ea);
  EXPECT_EQ(kernels::run16_sub_1(machine_, gs, a, b).ret, cs);
  EXPECT_EQ(gs, es);
}

TEST_F(Mpn16KernelTest, CmpAndShiftsMatchHost) {
  Rng rng(904);
  const std::size_t n = 13;
  const auto a = random_halfwords(rng, n);
  auto b = a;
  b[5] ^= 0x10;
  EXPECT_EQ(static_cast<std::int32_t>(kernels::run16_cmp(machine_, a, b).ret),
            mpn::cmp(a.data(), b.data(), n));
  EXPECT_EQ(kernels::run16_cmp(machine_, a, a).ret, 0u);
  for (unsigned count : {1u, 7u, 15u}) {
    std::vector<std::uint16_t> el(n), er(n), gl, gr;
    const std::uint16_t outl = mpn::lshift(el.data(), a.data(), n, count);
    const std::uint16_t outr = mpn::rshift(er.data(), a.data(), n, count);
    EXPECT_EQ(kernels::run16_lshift(machine_, gl, a, count).ret, outl) << count;
    EXPECT_EQ(gl, el) << count;
    EXPECT_EQ(kernels::run16_rshift(machine_, gr, a, count).ret, outr) << count;
    EXPECT_EQ(gr, er) << count;
  }
}

TEST(Mpn16Perf, PerLimbCheaperButPerBitCostlier) {
  // The radix trade: a 16-bit loop iteration is cheaper than a 32-bit one,
  // but covering the same operand width takes twice as many.
  Machine m16 = make_mpn16_machine();
  Machine m32 = kernels::make_mpn_machine();
  Rng rng(905);
  const std::size_t bits = 1024;
  const auto a16 = random_halfwords(rng, bits / 16);
  std::vector<std::uint16_t> r16 = random_halfwords(rng, bits / 16);
  std::vector<std::uint32_t> a32(bits / 32), r32(bits / 32);
  for (auto& x : a32) x = rng.next_u32();
  for (auto& x : r32) x = rng.next_u32();
  const auto c16 = kernels::run16_addmul_1(m16, r16, a16, 0x7fff);
  const auto c32 = kernels::run_addmul_1(m32, r32, a32, 0x7fffffffu);
  const double per_limb16 = static_cast<double>(c16.cycles) / (bits / 16.0);
  const double per_limb32 = static_cast<double>(c32.cycles) / (bits / 32.0);
  EXPECT_LT(per_limb16, per_limb32);
  // Per covered bit, radix 16 must lose (the exploration's conclusion) —
  // and by roughly the iteration-count ratio, not a small margin.
  EXPECT_GT(static_cast<double>(c16.cycles), 1.3 * static_cast<double>(c32.cycles));
}

TEST(Mpn16Characterize, MeasuredModelsBeatReuseApproximation) {
  kernels::Machine m32 = kernels::make_mpn_machine();
  kernels::Machine m16 = make_mpn16_machine();
  macromodel::CharacterizeOptions options;
  options.sizes = {4, 8, 16, 32};
  const auto full = macromodel::characterize_mpn_full(m32, m16, options);
  const auto approx = macromodel::characterize_mpn(m32, options);
  // Measured radix-16 addmul is cheaper per limb than the 32-bit reuse.
  EXPECT_LT(full.cycles(Prim::kAddMul1, 32, 0, 16),
            approx.cycles(Prim::kAddMul1, 32, 0, 16));
  // And the measured model matches a fresh ISS run closely.
  Rng rng(906);
  const std::size_t n = 24;
  const auto a = random_halfwords(rng, n);
  std::vector<std::uint16_t> r = random_halfwords(rng, n);
  const auto res = kernels::run16_addmul_1(m16, r, a, 0x1234);
  EXPECT_NEAR(full.cycles(Prim::kAddMul1, n, 0, 16),
              static_cast<double>(res.cycles),
              0.05 * static_cast<double>(res.cycles));
}

}  // namespace
}  // namespace wsp
