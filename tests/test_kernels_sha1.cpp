// SHA-1 XR32 kernel vs. the host implementation, and the measured
// cycles/byte the SSL workload model references.
#include <gtest/gtest.h>

#include "crypto/sha1.h"
#include "kernels/sha1_kernel.h"
#include "support/hex.h"
#include "support/random.h"

namespace wsp {
namespace {

using kernels::Machine;
using kernels::make_sha1_machine;
using kernels::Sha1Kernel;

class Sha1KernelTest : public ::testing::Test {
 protected:
  Machine machine_ = make_sha1_machine();
  Sha1Kernel kernel_{machine_};
};

TEST_F(Sha1KernelTest, KnownAnswers) {
  const std::vector<std::uint8_t> abc = {'a', 'b', 'c'};
  EXPECT_EQ(to_hex(kernel_.hash(abc).data(), 20),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(to_hex(kernel_.hash({}).data(), 20),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST_F(Sha1KernelTest, MatchesHostOnRandomLengths) {
  Rng rng(501);
  for (std::size_t len : {1u, 55u, 56u, 63u, 64u, 65u, 127u, 300u, 1000u}) {
    const auto data = rng.bytes(len);
    const auto expect = Sha1::hash(data);
    const auto got = kernel_.hash(data);
    EXPECT_TRUE(std::equal(expect.begin(), expect.end(), got.begin()))
        << "len=" << len;
  }
}

TEST_F(Sha1KernelTest, CyclesScaleWithBlocks) {
  Rng rng(502);
  std::uint64_t c1 = 0, c4 = 0;
  kernel_.hash(rng.bytes(40), &c1);    // 1 block after padding
  kernel_.hash(rng.bytes(232), &c4);   // 4 blocks after padding
  EXPECT_NEAR(static_cast<double>(c4) / static_cast<double>(c1), 4.0, 0.1);
}

TEST_F(Sha1KernelTest, CyclesPerByteIsEmbeddedRealistic) {
  Rng rng(503);
  std::uint64_t cycles = 0;
  const std::size_t len = 4096;
  kernel_.hash(rng.bytes(len), &cycles);
  const double cpb = static_cast<double>(cycles) / static_cast<double>(len);
  // Straightforward software SHA-1 on a single-issue 32-bit core lands in
  // the tens of cycles per byte.
  EXPECT_GT(cpb, 15.0);
  EXPECT_LT(cpb, 120.0);
}

}  // namespace
}  // namespace wsp
