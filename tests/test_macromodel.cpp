// Regression fitting + ISS-driven characterization of the mpn routines.
#include <gtest/gtest.h>

#include "macromodel/characterize.h"
#include "macromodel/regression.h"

namespace wsp {
namespace {

using macromodel::CharacterizeOptions;
using macromodel::fit;
using macromodel::FitQuality;
using macromodel::MacroModelSet;
using macromodel::Monomial;
using macromodel::PolyModel;

TEST(Regression, RecoversExactLinearModel) {
  std::vector<std::vector<double>> features;
  std::vector<double> cycles;
  for (int n = 1; n <= 40; ++n) {
    features.push_back({static_cast<double>(n), 0.0});
    cycles.push_back(17.0 + 12.5 * n);
  }
  FitQuality q;
  const PolyModel model = fit(features, cycles, {{0, 0}, {1, 0}}, &q);
  EXPECT_NEAR(model.coeffs()[0], 17.0, 1e-6);
  EXPECT_NEAR(model.coeffs()[1], 12.5, 1e-6);
  EXPECT_GT(q.r2, 0.9999);
  EXPECT_LT(q.mae_pct, 0.01);
}

TEST(Regression, RecoversQuadraticModel) {
  std::vector<std::vector<double>> features;
  std::vector<double> cycles;
  for (int n = 1; n <= 30; ++n) {
    features.push_back({static_cast<double>(n)});
    cycles.push_back(5.0 + 2.0 * n + 0.75 * n * n);
  }
  const PolyModel model = fit(features, cycles, {{0}, {1}, {2}});
  EXPECT_NEAR(model.coeffs()[2], 0.75, 1e-6);
  EXPECT_NEAR(model.evaluate({10.0}), 5.0 + 20.0 + 75.0, 1e-6);
}

TEST(Regression, CrossTermModel) {
  // cycles = 3*n*m sampled over a grid.
  std::vector<std::vector<double>> features;
  std::vector<double> cycles;
  for (int n = 1; n <= 8; ++n) {
    for (int m = 1; m <= 8; ++m) {
      features.push_back({static_cast<double>(n), static_cast<double>(m)});
      cycles.push_back(3.0 * n * m);
    }
  }
  const PolyModel model = fit(features, cycles, {{0, 0}, {1, 1}});
  EXPECT_NEAR(model.coeffs()[1], 3.0, 1e-6);
}

TEST(Regression, ToStringShowsTerms) {
  const PolyModel model({{0, 0}, {1, 0}}, {10.0, 2.0});
  const std::string s = model.to_string({"n", "m"});
  EXPECT_NE(s.find("10"), std::string::npos);
  EXPECT_NE(s.find("*n"), std::string::npos);
}

TEST(Regression, RejectsBadDimensions) {
  EXPECT_THROW(fit({{1.0}}, {1.0, 2.0}, {{0}}), std::invalid_argument);
  EXPECT_THROW(fit({}, {}, {{0}}), std::invalid_argument);
}

class CharacterizeTest : public ::testing::Test {
 protected:
  static const MacroModelSet& models() {
    static const MacroModelSet set = [] {
      kernels::Machine machine = kernels::make_mpn_machine();
      CharacterizeOptions options;
      options.sizes = {2, 4, 8, 16, 24, 32};
      return macromodel::characterize_mpn(machine, options);
    }();
    return set;
  }
};

TEST_F(CharacterizeTest, AllRoutinesCharacterized) {
  for (Prim p : {Prim::kAddN, Prim::kSubN, Prim::kMul1, Prim::kAddMul1,
                 Prim::kSubMul1, Prim::kCmp, Prim::kLshift, Prim::kRshift,
                 Prim::kDiv2by1}) {
    EXPECT_TRUE(models().has(p, 32)) << prim_name(p);
    EXPECT_TRUE(models().has(p, 16)) << prim_name(p);
  }
}

TEST_F(CharacterizeTest, FitsAreTight) {
  // The kernels are deterministic loops, so linear fits should be near-exact.
  for (Prim p : {Prim::kAddN, Prim::kAddMul1, Prim::kSubMul1}) {
    const auto& rm = models().get(p, 32);
    EXPECT_GT(rm.quality.r2, 0.999) << prim_name(p);
    EXPECT_LT(rm.quality.mae_pct, 5.0) << prim_name(p);
  }
}

TEST_F(CharacterizeTest, PredictionsInterpolate) {
  // Predict a size that was not in the characterization sweep and compare
  // against a real ISS run.
  kernels::Machine machine = kernels::make_mpn_machine();
  Rng rng(401);
  const std::size_t n = 20;  // not in {2,4,8,16,24,32}
  std::vector<std::uint32_t> a(n), b(n), r;
  for (auto& x : a) x = rng.next_u32();
  for (auto& x : b) x = rng.next_u32();
  const auto res = kernels::run_add_n(machine, r, a, b);
  const double predicted = models().cycles(Prim::kAddN, n, 0, 32);
  EXPECT_NEAR(predicted, static_cast<double>(res.cycles),
              0.05 * static_cast<double>(res.cycles));
}

TEST_F(CharacterizeTest, AddmulCostsMoreThanAdd) {
  EXPECT_GT(models().cycles(Prim::kAddMul1, 32, 0, 32),
            models().cycles(Prim::kAddN, 32, 0, 32));
}

TEST_F(CharacterizeTest, DescribeListsRoutines) {
  const std::string desc = models().describe();
  EXPECT_NE(desc.find("mpn_addmul_1"), std::string::npos);
  EXPECT_NE(desc.find("R^2"), std::string::npos);
}

TEST(CharacterizeTie, TieModelsPredictFewerCycles) {
  CharacterizeOptions options;
  options.sizes = {8, 16, 32};
  kernels::Machine base = kernels::make_mpn_machine();
  kernels::Machine tie = kernels::make_mpn_machine(kernels::MpnTieConfig{8, 4});
  const auto base_models = macromodel::characterize_mpn(base, options);
  const auto tie_models = macromodel::characterize_mpn(tie, options);
  EXPECT_LT(tie_models.cycles(Prim::kAddN, 32, 0, 32),
            base_models.cycles(Prim::kAddN, 32, 0, 32));
  EXPECT_LT(tie_models.cycles(Prim::kAddMul1, 32, 0, 32),
            base_models.cycles(Prim::kAddMul1, 32, 0, 32));
}

TEST_F(CharacterizeTest, SerializationRoundTrips) {
  const std::string text = models().serialize();
  const auto restored = macromodel::MacroModelSet::deserialize(text);
  for (Prim p : {Prim::kAddN, Prim::kAddMul1, Prim::kDiv2by1}) {
    for (unsigned bits : {16u, 32u}) {
      EXPECT_DOUBLE_EQ(restored.cycles(p, 24, 0, bits),
                       models().cycles(p, 24, 0, bits))
          << prim_name(p) << "@" << bits;
    }
  }
  EXPECT_EQ(restored.serialize(), text);
}

TEST(MacroModelSet, DeserializeRejectsGarbage) {
  EXPECT_THROW(macromodel::MacroModelSet::deserialize("1 32"), std::invalid_argument);
  EXPECT_THROW(macromodel::MacroModelSet::deserialize("x y z"), std::invalid_argument);
  // Empty input yields an empty (but valid) set.
  const auto empty = macromodel::MacroModelSet::deserialize("");
  EXPECT_FALSE(empty.has(Prim::kAddN, 32));
}

TEST(MacroModelSet, UnknownRoutineThrows) {
  MacroModelSet set;
  EXPECT_THROW(set.cycles(Prim::kAddN, 4, 0, 32), std::out_of_range);
}

}  // namespace
}  // namespace wsp
