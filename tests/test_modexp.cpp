// The centerpiece correctness sweep: every one of the 450 algorithm
// configurations in the paper's design space must produce identical results
// to the Mpz reference on an RSA-style workload.
#include <gtest/gtest.h>

#include "mp/modexp.h"
#include "mp/prime.h"
#include "support/random.h"

namespace wsp {
namespace {

struct RsaFixture {
  Mpz p, q, n, e, d;
  CrtKey crt;

  static const RsaFixture& get() {
    static const RsaFixture fx = [] {
      RsaFixture f;
      Rng rng(77);
      f.p = gen_prime(96, rng);
      f.q = gen_prime(96, rng);
      f.n = f.p * f.q;
      f.e = Mpz(65537);
      const Mpz phi = (f.p - Mpz(1)) * (f.q - Mpz(1));
      f.d = Mpz::invmod(f.e, phi);
      f.crt = CrtKey::derive(f.p, f.q, f.d);
      return f;
    }();
    return fx;
  }
};

TEST(ModexpConfig, SpaceHas450Points) {
  EXPECT_EQ(all_modexp_configs().size(), 450u);
}

TEST(ModexpConfig, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& cfg : all_modexp_configs()) names.insert(cfg.name());
  EXPECT_EQ(names.size(), 450u);
}

class ModexpAllConfigs : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ModexpAllConfigs, RsaRoundTripMatchesReference) {
  const ModexpConfig cfg = all_modexp_configs()[GetParam()];
  const RsaFixture& fx = RsaFixture::get();
  Rng rng(1000 + GetParam());
  ModexpEngine engine(cfg);

  const Mpz m = random_below(fx.n, rng);
  // Public op (no CRT applies).
  const Mpz c = engine.powm(m, fx.e, fx.n);
  EXPECT_EQ(c, Mpz::powm(m, fx.e, fx.n)) << cfg.name();
  // Private op through the configured CRT mode.
  const Mpz back = engine.powm_crt(c, fx.d, fx.crt);
  EXPECT_EQ(back, m) << cfg.name();
}

INSTANTIATE_TEST_SUITE_P(All450, ModexpAllConfigs,
                         ::testing::Range<std::size_t>(0, 450),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           std::string name =
                               all_modexp_configs()[info.param].name();
                           for (char& ch : name) {
                             if (!isalnum(static_cast<unsigned char>(ch))) ch = '_';
                           }
                           return name;
                         });

TEST(Modexp, CachingDoesNotChangeResults) {
  const RsaFixture& fx = RsaFixture::get();
  ModexpConfig cfg;
  cfg.caching = Caching::kFull;
  ModexpEngine engine(cfg);
  Rng rng(91);
  const Mpz m = random_below(fx.n, rng);
  const Mpz first = engine.powm(m, fx.d, fx.n);
  const Mpz second = engine.powm(m, fx.d, fx.n);  // cache-hit path
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, Mpz::powm(m, fx.d, fx.n));
}

TEST(Modexp, HookObservesFewerEventsWhenCached) {
  struct Counter : CostHook {
    std::size_t events = 0;
    void on_prim(Prim, std::size_t, std::size_t, unsigned) override { ++events; }
  };
  const RsaFixture& fx = RsaFixture::get();
  ModexpConfig cfg;
  cfg.caching = Caching::kFull;
  Counter c1;
  ModexpEngine engine(cfg, &c1);
  Rng rng(92);
  const Mpz m = random_below(fx.n, rng);
  engine.powm(m, fx.d, fx.n);
  const std::size_t cold = c1.events;
  c1.events = 0;
  engine.powm(m, fx.d, fx.n);
  const std::size_t warm = c1.events;
  EXPECT_LT(warm, cold) << "cached run must skip context+table setup events";
}

TEST(Modexp, WindowSizeTradesTableForScanMults) {
  struct Counter : CostHook {
    std::size_t addmuls = 0;
    void on_prim(Prim p, std::size_t, std::size_t, unsigned) override {
      if (p == Prim::kAddMul1) ++addmuls;
    }
  };
  const RsaFixture& fx = RsaFixture::get();
  Rng rng(93);
  const Mpz m = random_below(fx.n, rng);
  std::size_t events_w1 = 0, events_w5 = 0;
  for (unsigned w : {1u, 5u}) {
    ModexpConfig cfg;
    cfg.window_bits = w;
    cfg.caching = Caching::kContext;  // exclude context setup from the count
    Counter c;
    ModexpEngine engine(cfg, &c);
    engine.powm(m, fx.d, fx.n);
    (w == 1 ? events_w1 : events_w5) = c.addmuls;
  }
  // A 5-bit window needs fewer multiplications overall on a ~192-bit
  // exponent than binary scanning.
  EXPECT_LT(events_w5, events_w1);
}

TEST(Modexp, EdgeCases) {
  ModexpEngine engine{ModexpConfig{}};
  EXPECT_EQ(engine.powm(Mpz(5), Mpz(0), Mpz(7)), Mpz(1));
  EXPECT_EQ(engine.powm(Mpz(0), Mpz(5), Mpz(7)), Mpz(0));
  EXPECT_EQ(engine.powm(Mpz(5), Mpz(3), Mpz(1)), Mpz(0));
  EXPECT_THROW(engine.powm(Mpz(5), Mpz(3), Mpz(0)), std::domain_error);
}

TEST(Modexp, MontgomeryRejectsEvenModulus) {
  ModexpConfig cfg;
  cfg.mul = MulAlgo::kMontCIOS;
  ModexpEngine engine(cfg);
  EXPECT_THROW(engine.powm(Mpz(3), Mpz(5), Mpz(100)), std::invalid_argument);
}

TEST(Modexp, DivisionConfigsHandleEvenModulus) {
  for (MulAlgo alg : {MulAlgo::kBasecaseDiv, MulAlgo::kKaratsubaDiv, MulAlgo::kBarrett}) {
    ModexpConfig cfg;
    cfg.mul = alg;
    ModexpEngine engine(cfg);
    const Mpz m = Mpz::from_hex("10000000000000000000000000000000");  // even
    const Mpz r = engine.powm(Mpz(12345), Mpz(67), m);
    EXPECT_EQ(r, Mpz::powm(Mpz(12345), Mpz(67), m)) << to_string(alg);
  }
}

TEST(Modexp, InvalidWindowRejected) {
  ModexpConfig cfg;
  cfg.window_bits = 6;
  EXPECT_THROW(ModexpEngine{cfg}, std::invalid_argument);
  cfg.window_bits = 0;
  EXPECT_THROW(ModexpEngine{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace wsp
