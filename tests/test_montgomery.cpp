// Montgomery contexts: all three scanning variants, both radices, checked
// against the Mpz reference.
#include <gtest/gtest.h>

#include "mp/montgomery.h"
#include "mp/mpz.h"
#include "support/random.h"

namespace wsp {
namespace {

template <typename L>
std::vector<L> to_limbs(const Mpz& x, std::size_t k) {
  const auto bytes_needed = k * sizeof(L);
  auto be = x.to_bytes_be(bytes_needed);
  std::vector<std::uint8_t> le(be.rbegin(), be.rend());
  return mpn::from_bytes_le<L>(le.data(), le.size());
}

template <typename L>
Mpz from_limbs(const std::vector<L>& v) {
  std::vector<std::uint8_t> le(v.size() * sizeof(L));
  mpn::to_bytes_le(v.data(), v.size(), le.data(), le.size());
  std::vector<std::uint8_t> be(le.rbegin(), le.rend());
  return Mpz::from_bytes_be(be);
}

template <typename T>
class MontTest : public ::testing::Test {};
using LimbTypes = ::testing::Types<std::uint16_t, std::uint32_t>;
TYPED_TEST_SUITE(MontTest, LimbTypes);

TYPED_TEST(MontTest, RejectsEvenModulus) {
  using L = TypeParam;
  std::vector<L> even = {4, 1};
  EXPECT_THROW(Mont<L>{even}, std::invalid_argument);
}

TYPED_TEST(MontTest, N0InvProperty) {
  using L = TypeParam;
  // n0' = -n^{-1} mod B  =>  n0 * n0inv = -1 mod B.
  const Mpz m = Mpz::from_hex("f123456789abcdef123456789abcdef1");
  const std::size_t k = (m.bit_length() + mpn::LimbTraits<L>::bits - 1) /
                        mpn::LimbTraits<L>::bits;
  Mont<L> ctx(to_limbs<L>(m, k));
  const L prod = static_cast<L>(ctx.modulus()[0] * ctx.n0inv());
  EXPECT_EQ(prod, static_cast<L>(~static_cast<L>(0)));
}

TYPED_TEST(MontTest, MulMatchesReferenceAllVariants) {
  using L = TypeParam;
  Rng rng(31);
  const Mpz m = Mpz::from_hex("c90fdaa22168c234c4c6628b80dc1cd1");
  const std::size_t k = (m.bit_length() + mpn::LimbTraits<L>::bits - 1) /
                        mpn::LimbTraits<L>::bits;
  Mont<L> ctx(to_limbs<L>(m, k));
  for (MontVariant v : {MontVariant::kSOS, MontVariant::kCIOS, MontVariant::kFIOS}) {
    for (int i = 0; i < 25; ++i) {
      const Mpz a = Mpz::from_bytes_be(rng.bytes(16)).mod(m);
      const Mpz b = Mpz::from_bytes_be(rng.bytes(16)).mod(m);
      const auto am = ctx.to_mont(to_limbs<L>(a, k), v);
      const auto bm = ctx.to_mont(to_limbs<L>(b, k), v);
      std::vector<L> rm(k);
      ctx.mul(rm, am, bm, v);
      const Mpz r = from_limbs<L>(ctx.from_mont(rm, v));
      EXPECT_EQ(r, (a * b).mod(m)) << "variant " << static_cast<int>(v);
    }
  }
}

TYPED_TEST(MontTest, VariantsAgreeWithEachOther) {
  using L = TypeParam;
  Rng rng(32);
  const Mpz m = Mpz::from_hex("e3b0c44298fc1c149afbf4c8996fb92427ae41e5");
  const std::size_t k = (m.bit_length() + mpn::LimbTraits<L>::bits - 1) /
                        mpn::LimbTraits<L>::bits;
  Mont<L> ctx(to_limbs<L>(m, k));
  const Mpz a = Mpz::from_bytes_be(rng.bytes(20)).mod(m);
  const Mpz b = Mpz::from_bytes_be(rng.bytes(20)).mod(m);
  const auto al = to_limbs<L>(a, k);
  const auto bl = to_limbs<L>(b, k);
  std::vector<L> sos(k), cios(k), fios(k);
  ctx.mul(sos, al, bl, MontVariant::kSOS);
  ctx.mul(cios, al, bl, MontVariant::kCIOS);
  ctx.mul(fios, al, bl, MontVariant::kFIOS);
  EXPECT_EQ(sos, cios);
  EXPECT_EQ(sos, fios);
}

TYPED_TEST(MontTest, ToFromMontRoundTrips) {
  using L = TypeParam;
  Rng rng(33);
  const Mpz m = Mpz::from_hex("ffdd2bd3499f1f25f3ed4c3b9e0e6401");
  const std::size_t k = (m.bit_length() + mpn::LimbTraits<L>::bits - 1) /
                        mpn::LimbTraits<L>::bits;
  Mont<L> ctx(to_limbs<L>(m, k));
  for (int i = 0; i < 20; ++i) {
    const Mpz a = Mpz::from_bytes_be(rng.bytes(16)).mod(m);
    const auto mont = ctx.to_mont(to_limbs<L>(a, k), MontVariant::kCIOS);
    EXPECT_EQ(from_limbs<L>(ctx.from_mont(mont, MontVariant::kCIOS)), a);
  }
}

TEST(MontHook, ReportsAddmulEvents) {
  struct Counter : CostHook {
    std::size_t addmuls = 0;
    void on_prim(Prim p, std::size_t, std::size_t, unsigned) override {
      if (p == Prim::kAddMul1) ++addmuls;
    }
  } counter;
  const Mpz m = Mpz::from_hex("f0000000000000000000000000000001");
  Mont<std::uint32_t> ctx(to_limbs<std::uint32_t>(m, 4));
  ctx.set_hook(&counter);
  std::vector<std::uint32_t> r(4), a = {1, 2, 3, 4}, b = {5, 6, 7, 8};
  ctx.mul(r, a, b, MontVariant::kCIOS);
  // CIOS does 2 addmul_1 sweeps per limb of b.
  EXPECT_EQ(counter.addmuls, 8u);
}

}  // namespace
}  // namespace wsp
