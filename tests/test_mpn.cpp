// Property tests of the mpn kernels, for both radix options, checked
// against 64-bit arithmetic and against each other.
#include <gtest/gtest.h>

#include "mp/mpn.h"
#include "support/random.h"

namespace wsp {
namespace {

template <typename L>
std::vector<L> random_limbs(Rng& rng, std::size_t n) {
  std::vector<L> v(n);
  for (auto& x : v) x = static_cast<L>(rng.next_u64());
  return v;
}

template <typename T>
class MpnTypedTest : public ::testing::Test {};

using LimbTypes = ::testing::Types<std::uint16_t, std::uint32_t>;
TYPED_TEST_SUITE(MpnTypedTest, LimbTypes);

TYPED_TEST(MpnTypedTest, AddThenSubRoundTrips) {
  using L = TypeParam;
  Rng rng(7);
  for (std::size_t n : {1u, 2u, 5u, 16u, 33u}) {
    const auto a = random_limbs<L>(rng, n);
    const auto b = random_limbs<L>(rng, n);
    std::vector<L> sum(n), back(n);
    const L carry = mpn::add_n(sum.data(), a.data(), b.data(), n);
    const L borrow = mpn::sub_n(back.data(), sum.data(), b.data(), n);
    EXPECT_EQ(back, a) << "n=" << n;
    EXPECT_EQ(carry, borrow) << "n=" << n;  // wrap symmetric
  }
}

TYPED_TEST(MpnTypedTest, AddIsCommutative) {
  using L = TypeParam;
  Rng rng(8);
  const std::size_t n = 24;
  const auto a = random_limbs<L>(rng, n);
  const auto b = random_limbs<L>(rng, n);
  std::vector<L> r1(n), r2(n);
  const L c1 = mpn::add_n(r1.data(), a.data(), b.data(), n);
  const L c2 = mpn::add_n(r2.data(), b.data(), a.data(), n);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(c1, c2);
}

TYPED_TEST(MpnTypedTest, Mul1MatchesAddmul1OnZeroTarget) {
  using L = TypeParam;
  Rng rng(9);
  const std::size_t n = 17;
  const auto a = random_limbs<L>(rng, n);
  const L b = static_cast<L>(rng.next_u64() | 1);
  std::vector<L> r1(n), r2(n, 0);
  const L c1 = mpn::mul_1(r1.data(), a.data(), n, b);
  const L c2 = mpn::addmul_1(r2.data(), a.data(), n, b);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(c1, c2);
}

TYPED_TEST(MpnTypedTest, AddmulThenSubmulCancels) {
  using L = TypeParam;
  Rng rng(10);
  const std::size_t n = 20;
  const auto a = random_limbs<L>(rng, n);
  const auto base = random_limbs<L>(rng, n);
  const L b = static_cast<L>(rng.next_u64());
  std::vector<L> r = base;
  const L c1 = mpn::addmul_1(r.data(), a.data(), n, b);
  const L c2 = mpn::submul_1(r.data(), a.data(), n, b);
  EXPECT_EQ(r, base);
  EXPECT_EQ(c1, c2);
}

TYPED_TEST(MpnTypedTest, KaratsubaMatchesBasecase) {
  using L = TypeParam;
  Rng rng(11);
  for (std::size_t n : {16u, 32u, 48u, 64u}) {
    const auto a = random_limbs<L>(rng, n);
    const auto b = random_limbs<L>(rng, n);
    std::vector<L> r1(2 * n), r2(2 * n);
    mpn::mul_basecase(r1.data(), a.data(), n, b.data(), n);
    mpn::mul_karatsuba(r2.data(), a.data(), b.data(), n);
    EXPECT_EQ(r1, r2) << "n=" << n;
  }
}

TYPED_TEST(MpnTypedTest, ShiftRoundTrip) {
  using L = TypeParam;
  Rng rng(12);
  const std::size_t n = 9;
  for (unsigned count = 1; count < mpn::LimbTraits<L>::bits; ++count) {
    auto a = random_limbs<L>(rng, n);
    a[n - 1] = static_cast<L>(a[n - 1] >> count);  // headroom so no bits lost
    std::vector<L> up(n), back(n);
    mpn::lshift(up.data(), a.data(), n, count);
    mpn::rshift(back.data(), up.data(), n, count);
    EXPECT_EQ(back, a) << "count=" << count;
  }
}

TYPED_TEST(MpnTypedTest, DivremReconstructs) {
  using L = TypeParam;
  Rng rng(13);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t dn = 1 + rng.below(6);
    const std::size_t un = dn + rng.below(8);
    auto u = random_limbs<L>(rng, un);
    auto d = random_limbs<L>(rng, dn);
    if (d[dn - 1] == 0) d[dn - 1] = 1;
    std::vector<L> q(un - dn + 1), r(dn);
    mpn::divrem(q.data(), r.data(), u.data(), un, d.data(), dn);
    // Check u == q*d + r and r < d.
    std::vector<L> qd(q.size() + dn, 0);
    mpn::mul_basecase(qd.data(), q.data(), q.size(), d.data(), dn);
    std::vector<L> sum(un + 2, 0);
    for (std::size_t i = 0; i < qd.size() && i < sum.size(); ++i) sum[i] = qd[i];
    L carry = mpn::add_n(sum.data(), sum.data(), r.data(), dn);
    mpn::add_1(sum.data() + dn, sum.data() + dn, sum.size() - dn, carry);
    EXPECT_EQ(mpn::cmp2(sum.data(), sum.size(), u.data(), un), 0) << "iter=" << iter;
    EXPECT_LT(mpn::cmp2(r.data(), dn, d.data(), dn), 1);
    EXPECT_EQ(mpn::cmp2(r.data(), dn, d.data(), dn) < 0, true);
  }
}

TYPED_TEST(MpnTypedTest, BitLength) {
  using L = TypeParam;
  std::vector<L> v(3, 0);
  EXPECT_EQ(mpn::bit_length(v.data(), 3), 0u);
  v[0] = 1;
  EXPECT_EQ(mpn::bit_length(v.data(), 3), 1u);
  v[2] = 1;
  EXPECT_EQ(mpn::bit_length(v.data(), 3), 2 * mpn::LimbTraits<L>::bits + 1);
}

TYPED_TEST(MpnTypedTest, CmpOrdersCorrectly) {
  using L = TypeParam;
  std::vector<L> a = {1, 2, 3};
  std::vector<L> b = {2, 2, 3};
  EXPECT_EQ(mpn::cmp(a.data(), b.data(), 3), -1);
  EXPECT_EQ(mpn::cmp(b.data(), a.data(), 3), 1);
  EXPECT_EQ(mpn::cmp(a.data(), a.data(), 3), 0);
}

TYPED_TEST(MpnTypedTest, BytesRoundTrip) {
  using L = TypeParam;
  Rng rng(14);
  const auto bytes = rng.bytes(23);
  const auto limbs = mpn::from_bytes_le<L>(bytes.data(), bytes.size());
  std::vector<std::uint8_t> back(23);
  mpn::to_bytes_le(limbs.data(), limbs.size(), back.data(), back.size());
  EXPECT_EQ(back, bytes);
}

TEST(Mpn, DivremAddBackPath) {
  // Crafted so the initial qhat estimate overshoots by one
  // (u = 2^94, d = 2^63 + 2^32 - 1): exercises Knuth-D's add-back
  // correction, which random inputs essentially never reach.
  const std::vector<std::uint32_t> u = {0, 0, 0x40000000u};
  const std::vector<std::uint32_t> d = {0xFFFFFFFFu, 0x80000000u};
  std::vector<std::uint32_t> q(2), r(2);
  mpn::divrem(q.data(), r.data(), u.data(), 3, d.data(), 2);
  EXPECT_EQ(q[0], 0x7FFFFFFFu);
  EXPECT_EQ(q[1], 0u);
  // Reconstruct.
  std::vector<std::uint32_t> qd(4, 0);
  mpn::mul_basecase(qd.data(), q.data(), 2, d.data(), 2);
  std::uint32_t carry = mpn::add_n(qd.data(), qd.data(), r.data(), 2);
  mpn::add_1(qd.data() + 2, qd.data() + 2, 2, carry);
  EXPECT_EQ(mpn::cmp2(qd.data(), 4, u.data(), 3), 0);
}

TEST(Mpn, DivremQhatClampPath) {
  // Top remainder limb equal to the top divisor limb forces the
  // qhat = B-1 clamp.
  const std::vector<std::uint32_t> u = {5, 0xFFFFFFFFu, 0x7FFFFFFFu, 0x80000000u};
  const std::vector<std::uint32_t> d = {1, 0x80000000u};
  std::vector<std::uint32_t> q(3), r(2);
  mpn::divrem(q.data(), r.data(), u.data(), 4, d.data(), 2);
  std::vector<std::uint32_t> qd(5, 0);
  mpn::mul_basecase(qd.data(), q.data(), 3, d.data(), 2);
  std::uint32_t carry = mpn::add_n(qd.data(), qd.data(), r.data(), 2);
  mpn::add_1(qd.data() + 2, qd.data() + 2, 3, carry);
  EXPECT_EQ(mpn::cmp2(qd.data(), 5, u.data(), 4), 0);
  EXPECT_LT(mpn::cmp2(r.data(), 2, d.data(), 2), 0);
}

TEST(Mpn, Clz) {
  EXPECT_EQ(mpn::clz<std::uint32_t>(1u), 31u);
  EXPECT_EQ(mpn::clz<std::uint32_t>(0x80000000u), 0u);
  EXPECT_EQ(mpn::clz<std::uint16_t>(std::uint16_t{1}), 15u);
}

}  // namespace
}  // namespace wsp
