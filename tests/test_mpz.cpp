#include <gtest/gtest.h>

#include "mp/mpz.h"
#include "support/random.h"

namespace wsp {
namespace {

Mpz random_mpz(Rng& rng, std::size_t max_bytes) {
  const std::size_t n = 1 + rng.below(max_bytes);
  return Mpz::from_bytes_be(rng.bytes(n));
}

TEST(Mpz, HexRoundTrip) {
  const char* cases[] = {"0", "1", "ff", "100", "deadbeefcafebabe",
                         "123456789abcdef0123456789abcdef"};
  for (const char* c : cases) {
    EXPECT_EQ(Mpz::from_hex(c).to_hex(), c);
  }
  EXPECT_EQ(Mpz::from_hex("-ff").to_hex(), "-ff");
  EXPECT_EQ(Mpz::from_hex("0x10").to_hex(), "10");
}

TEST(Mpz, SmallArithmetic) {
  EXPECT_EQ(Mpz(3) + Mpz(4), Mpz(7));
  EXPECT_EQ(Mpz(3) - Mpz(4), Mpz(-1));
  EXPECT_EQ(Mpz(-3) * Mpz(4), Mpz(-12));
  EXPECT_EQ(Mpz(17) / Mpz(5), Mpz(3));
  EXPECT_EQ(Mpz(17) % Mpz(5), Mpz(2));
  EXPECT_EQ(Mpz(-17) % Mpz(5), Mpz(-2));  // remainder follows dividend
  EXPECT_EQ(Mpz(-17).mod(Mpz(5)), Mpz(3));
}

TEST(Mpz, DivisionByZeroThrows) {
  EXPECT_THROW(Mpz(1) / Mpz(0), std::domain_error);
}

TEST(Mpz, DivmodIdentityRandom) {
  Rng rng(21);
  for (int i = 0; i < 200; ++i) {
    const Mpz a = random_mpz(rng, 40);
    Mpz b = random_mpz(rng, 20);
    if (b.is_zero()) b = Mpz(1);
    Mpz q, r;
    Mpz::divmod(a, b, q, r);
    EXPECT_EQ(q * b + r, a) << "iter " << i;
    EXPECT_TRUE((r.is_negative() ? -r : r) < (b.is_negative() ? -b : b));
  }
}

TEST(Mpz, MulDistributesOverAdd) {
  Rng rng(22);
  for (int i = 0; i < 100; ++i) {
    const Mpz a = random_mpz(rng, 24);
    const Mpz b = random_mpz(rng, 24);
    const Mpz c = random_mpz(rng, 24);
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST(Mpz, ShiftsMatchMulDiv) {
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    const Mpz a = random_mpz(rng, 16);
    const std::size_t s = rng.below(70);
    EXPECT_EQ(a.lshift(s), a * Mpz(1).lshift(s));
    EXPECT_EQ(a.rshift(s), a / Mpz(1).lshift(s));
  }
}

TEST(Mpz, BitAccess) {
  const Mpz v = Mpz::from_hex("8000000000000001");
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(1));
  EXPECT_EQ(v.bit_length(), 64u);
  EXPECT_EQ(v.bits(0, 4), 1u);
  EXPECT_EQ(v.bits(60, 4), 8u);
}

TEST(Mpz, GcdMatchesEuclid) {
  EXPECT_EQ(Mpz::gcd(Mpz(48), Mpz(36)), Mpz(12));
  EXPECT_EQ(Mpz::gcd(Mpz(17), Mpz(5)), Mpz(1));
  EXPECT_EQ(Mpz::gcd(Mpz(0), Mpz(7)), Mpz(7));
}

TEST(Mpz, GcdextBezoutIdentity) {
  Rng rng(24);
  for (int i = 0; i < 60; ++i) {
    const Mpz a = random_mpz(rng, 12);
    const Mpz b = random_mpz(rng, 12);
    Mpz x, y;
    const Mpz g = Mpz::gcdext(a, b, x, y);
    EXPECT_EQ(a * x + b * y, g);
    if (!a.is_zero() && !b.is_zero()) {
      EXPECT_EQ(a % g, Mpz(0));
      EXPECT_EQ(b % g, Mpz(0));
    }
  }
}

TEST(Mpz, InvmodInvertsOddModulus) {
  Rng rng(25);
  const Mpz m = Mpz::from_hex("fffffffffffffffffffffffffffffff1");
  for (int i = 0; i < 40; ++i) {
    Mpz a = random_mpz(rng, 16).mod(m);
    if (a.is_zero()) continue;
    if (!(Mpz::gcd(a, m) == Mpz(1))) continue;
    const Mpz inv = Mpz::invmod(a, m);
    EXPECT_EQ((a * inv).mod(m), Mpz(1));
  }
}

TEST(Mpz, InvmodThrowsWhenNotInvertible) {
  EXPECT_THROW(Mpz::invmod(Mpz(4), Mpz(8)), std::domain_error);
}

TEST(Mpz, PowmSmallCases) {
  EXPECT_EQ(Mpz::powm(Mpz(2), Mpz(10), Mpz(1000)), Mpz(24));
  EXPECT_EQ(Mpz::powm(Mpz(3), Mpz(0), Mpz(7)), Mpz(1));
  EXPECT_EQ(Mpz::powm(Mpz(0), Mpz(5), Mpz(7)), Mpz(0));
  // Fermat: a^(p-1) = 1 mod p.
  EXPECT_EQ(Mpz::powm(Mpz(123456), Mpz(1000003 - 1), Mpz(1000003)), Mpz(1));
}

TEST(Mpz, PowmMatchesNaive) {
  Rng rng(26);
  for (int i = 0; i < 30; ++i) {
    const Mpz base(static_cast<std::int64_t>(rng.below(1000)));
    const std::uint64_t e = rng.below(40);
    const Mpz mod(static_cast<std::int64_t>(2 + rng.below(100000)));
    Mpz naive(1);
    for (std::uint64_t k = 0; k < e; ++k) naive = (naive * base).mod(mod);
    EXPECT_EQ(Mpz::powm(base, Mpz::from_u64(e), mod), naive);
  }
}

TEST(Mpz, BytesRoundTrip) {
  Rng rng(27);
  for (int i = 0; i < 30; ++i) {
    auto bytes = rng.bytes(1 + rng.below(33));
    bytes[0] |= 1;  // avoid leading-zero ambiguity
    const Mpz v = Mpz::from_bytes_be(bytes);
    EXPECT_EQ(v.to_bytes_be(bytes.size()), bytes);
  }
}

TEST(Mpz, ComparisonOperators) {
  EXPECT_TRUE(Mpz(-5) < Mpz(3));
  EXPECT_TRUE(Mpz(3) > Mpz(-5));
  EXPECT_TRUE(Mpz(-5) < Mpz(-3));
  EXPECT_TRUE(Mpz(7) <= Mpz(7));
  EXPECT_TRUE(Mpz(7) >= Mpz(7));
}

}  // namespace
}  // namespace wsp
