// Parallel design-space exploration engine: the determinism contract —
// identical ranking / identical A-D curves for any thread count — plus
// exception propagation out of the worker pool.  Labeled tier2 so CI can
// rerun these under sanitizers (-DWSP_SANITIZE=address,undefined or
// thread).
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "explore/space.h"
#include "macromodel/characterize.h"
#include "tie/characterize.h"

namespace wsp {
namespace {

using explore::RsaWorkload;

const macromodel::MacroModelSet& models() {
  static const macromodel::MacroModelSet set = [] {
    kernels::Machine machine = kernels::make_mpn_machine();
    macromodel::CharacterizeOptions options;
    options.sizes = {2, 4, 8, 16};
    return macromodel::characterize_mpn(machine, options);
  }();
  return set;
}

const RsaWorkload& workload() {
  static const RsaWorkload w = [] {
    Rng rng(733);
    auto wl = explore::make_rsa_workload(256, rng);
    wl.repetitions = 2;
    return wl;
  }();
  return w;
}

TEST(ParallelExplore, RankingIdenticalForAnyThreadCount) {
  const auto configs = all_modexp_configs();
  const auto serial =
      explore::explore_modexp_space(workload(), models(), configs, 1);
  ASSERT_EQ(serial.ranked.size(), configs.size());
  for (unsigned threads : {2u, 4u}) {
    const auto parallel =
        explore::explore_modexp_space(workload(), models(), configs, threads);
    EXPECT_EQ(parallel.threads, threads);
    ASSERT_EQ(parallel.ranked.size(), serial.ranked.size());
    for (std::size_t i = 0; i < serial.ranked.size(); ++i) {
      EXPECT_EQ(parallel.ranked[i].config.name(),
                serial.ranked[i].config.name())
          << "rank " << i << " with " << threads << " threads";
      EXPECT_EQ(parallel.ranked[i].estimate.avg_cycles,
                serial.ranked[i].estimate.avg_cycles)
          << "rank " << i;
      EXPECT_EQ(parallel.ranked[i].estimate.events,
                serial.ranked[i].estimate.events)
          << "rank " << i;
    }
  }
}

TEST(ParallelExplore, WorkerExceptionPropagates) {
  auto bad = workload();
  bad.repetitions = 0;
  EXPECT_THROW(explore::explore_modexp_space(bad, models(),
                                             all_modexp_configs(), 4),
               std::invalid_argument);
}

TEST(ParallelExplore, AdCurvesIdenticalForAnyThreadCount) {
  const auto candidates = tie::mpn_routine_candidates();
  tie::AdMeasureOptions options;
  options.limbs = 8;
  const auto serial = tie::measure_mpn_adcurves(candidates, options);
  ASSERT_EQ(serial.size(), candidates.size());
  options.threads = 4;
  const auto parallel = tie::measure_mpn_adcurves(candidates, options);
  ASSERT_EQ(parallel.size(), serial.size());
  for (const auto& [name, curve] : serial) {
    const auto it = parallel.find(name);
    ASSERT_NE(it, parallel.end()) << name;
    ASSERT_EQ(it->second.points().size(), curve.points().size()) << name;
    for (std::size_t i = 0; i < curve.points().size(); ++i) {
      EXPECT_EQ(it->second.points()[i].area, curve.points()[i].area);
      EXPECT_EQ(it->second.points()[i].cycles, curve.points()[i].cycles);
      EXPECT_EQ(it->second.points()[i].instrs, curve.points()[i].instrs);
    }
  }
}

TEST(ParallelExplore, AdCurvesHaveBasePointAndAcceleratedPoints) {
  tie::AdMeasureOptions options;
  options.limbs = 32;  // 1024-bit operands, the Fig. 5 size
  options.threads = 2;
  const auto curves =
      tie::measure_mpn_adcurves(tie::mpn_routine_candidates(), options);
  for (const auto& [name, curve] : curves) {
    ASSERT_FALSE(curve.empty()) << name;
    EXPECT_EQ(curve.points().front().area, 0.0) << name;
    double best = curve.points().front().cycles;
    for (const auto& p : curve.points()) best = std::min(best, p.cycles);
    if (name == "mpn_mul_1") {
      // mpn_mul_1 has no TIE form (only addmul_1 uses the MAC units), so
      // its curve is flat — the measurement exposes those candidates as
      // dominated and never slower than the baseline.
      EXPECT_EQ(best, curve.points().front().cycles) << name;
    } else {
      // At this operand size some datapath must beat the baseline.
      EXPECT_LT(best, curve.points().front().cycles) << name;
    }
  }
}

TEST(ParallelExplore, RejectsRoutineWithoutIssDriver) {
  tie::RoutineCandidates rc;
  rc.routine = "mpn_frobnicate";
  rc.alternatives.push_back({});
  EXPECT_THROW(tie::measure_mpn_adcurves({rc}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace wsp
