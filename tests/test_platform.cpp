// The SecurityPlatform facade: functional equivalence between baseline and
// optimized configurations, agreement with the host library, and the
// headline performance ordering.
#include <gtest/gtest.h>

#include "crypto/aes.h"
#include "crypto/sha1.h"
#include "crypto/des.h"
#include "platform/platform.h"
#include "support/random.h"

namespace wsp {
namespace {

using platform::Config;
using platform::SecurityPlatform;

TEST(Platform, DesMatchesHostOnBothConfigs) {
  Rng rng(441);
  const std::uint64_t key = rng.next_u64();
  const auto data = rng.bytes(64);
  const auto expect = des::encrypt_ecb(data, des::key_schedule(key));
  for (Config config : {Config::kBaseline, Config::kOptimized}) {
    SecurityPlatform p(config);
    EXPECT_EQ(p.des_encrypt(data, key), expect) << to_string(config);
    EXPECT_GT(p.cycles_consumed(), 0u);
  }
}

TEST(Platform, TripleDesMatchesHost) {
  Rng rng(442);
  const std::uint64_t k1 = rng.next_u64(), k2 = rng.next_u64(), k3 = rng.next_u64();
  const auto data = rng.bytes(32);
  const auto ks = des::triple_key_schedule(k1, k2, k3);
  std::vector<std::uint8_t> expect(data.size());
  for (std::size_t i = 0; i < data.size(); i += 8) {
    des::store_be64(des::encrypt_block_3des(des::load_be64(data.data() + i), ks),
                    expect.data() + i);
  }
  for (Config config : {Config::kBaseline, Config::kOptimized}) {
    SecurityPlatform p(config);
    EXPECT_EQ(p.des3_encrypt(data, k1, k2, k3), expect) << to_string(config);
  }
}

TEST(Platform, AesMatchesHost) {
  Rng rng(443);
  const auto key = rng.bytes(16);
  const auto data = rng.bytes(48);
  const auto expect = aes::encrypt_ecb(data, aes::key_schedule(key));
  for (Config config : {Config::kBaseline, Config::kOptimized}) {
    SecurityPlatform p(config);
    EXPECT_EQ(p.aes128_encrypt(data, key), expect) << to_string(config);
  }
}

TEST(Platform, RsaRoundTripOnBothConfigs) {
  Rng rng(444);
  const auto key = rsa::generate_key(256, rng);
  const Mpz m = Mpz::from_bytes_be(rng.bytes(24));
  for (Config config : {Config::kBaseline, Config::kOptimized}) {
    SecurityPlatform p(config);
    const Mpz c = p.rsa_public(m, key.public_key());
    EXPECT_EQ(p.rsa_private(c, key), m) << to_string(config);
  }
}

TEST(Platform, OptimizedIsFasterAcrossAllPrimitives) {
  Rng rng(445);
  const auto data = rng.bytes(128);
  const std::uint64_t key = rng.next_u64();
  const auto aes_key = rng.bytes(16);
  const auto rsa_key = rsa::generate_key(256, rng);
  const Mpz c = Mpz::from_bytes_be(rng.bytes(24));

  std::uint64_t base_cycles[3], opt_cycles[3];
  for (Config config : {Config::kBaseline, Config::kOptimized}) {
    SecurityPlatform p(config);
    auto* out = config == Config::kBaseline ? base_cycles : opt_cycles;
    p.des_encrypt(data, key);
    out[0] = p.cycles_consumed();
    p.reset_cycles();
    p.aes128_encrypt(data, aes_key);
    out[1] = p.cycles_consumed();
    p.reset_cycles();
    p.rsa_private(c, rsa_key);
    out[2] = p.cycles_consumed();
  }
  EXPECT_GT(base_cycles[0], 5 * opt_cycles[0]) << "DES";
  EXPECT_GT(base_cycles[1], 2 * opt_cycles[1]) << "AES";
  EXPECT_GT(base_cycles[2], 2 * opt_cycles[2]) << "RSA";
}

TEST(Platform, Sha1MatchesHostAndCostsSameOnBothConfigs) {
  Rng rng(447);
  const auto data = rng.bytes(300);
  const auto expect = Sha1::hash(data);
  std::uint64_t cycles[2];
  int idx = 0;
  for (Config config : {Config::kBaseline, Config::kOptimized}) {
    SecurityPlatform p(config);
    p.reset_cycles();
    const auto got = p.sha1(data);
    EXPECT_TRUE(std::equal(expect.begin(), expect.end(), got.begin()))
        << to_string(config);
    cycles[idx++] = p.cycles_consumed();
  }
  // Hashing is not accelerated: identical cost on both configurations.
  EXPECT_EQ(cycles[0], cycles[1]);
}

TEST(Platform, ClockConversion) {
  SecurityPlatform p(Config::kBaseline);
  Rng rng(446);
  p.des_encrypt(rng.bytes(8), 42);
  const double secs = p.seconds_at_clock(188.0);
  EXPECT_GT(secs, 0.0);
  EXPECT_NEAR(secs, static_cast<double>(p.cycles_consumed()) / 188e6, 1e-12);
}

}  // namespace
}  // namespace wsp
