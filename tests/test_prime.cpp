#include <gtest/gtest.h>

#include "mp/prime.h"

namespace wsp {
namespace {

TEST(Prime, KnownSmallPrimes) {
  Rng rng(51);
  for (int p : {2, 3, 5, 7, 11, 13, 97, 101, 257, 65537}) {
    EXPECT_TRUE(is_probable_prime(Mpz(p), 16, rng)) << p;
  }
}

TEST(Prime, KnownComposites) {
  Rng rng(52);
  for (int c : {1, 4, 6, 9, 15, 91, 561 /* Carmichael */, 65535, 1000001}) {
    EXPECT_FALSE(is_probable_prime(Mpz(c), 16, rng)) << c;
  }
}

TEST(Prime, LargeKnownPrime) {
  Rng rng(53);
  // 2^127 - 1 (Mersenne prime).
  const Mpz m127 = Mpz(1).lshift(127) - Mpz(1);
  EXPECT_TRUE(is_probable_prime(m127, 12, rng));
  // 2^128 - 1 is composite.
  EXPECT_FALSE(is_probable_prime(Mpz(1).lshift(128) - Mpz(1), 12, rng));
}

TEST(Prime, GeneratedPrimeHasRequestedSize) {
  Rng rng(54);
  for (std::size_t bits : {32u, 64u, 128u}) {
    const Mpz p = gen_prime(bits, rng);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(p.is_odd());
    EXPECT_TRUE(p.bit(bits - 2)) << "second-highest bit forced for RSA sizing";
    EXPECT_TRUE(is_probable_prime(p, 16, rng));
  }
}

TEST(Prime, RandomBelowInRange) {
  Rng rng(55);
  const Mpz bound = Mpz::from_hex("10000000000000");
  for (int i = 0; i < 100; ++i) {
    const Mpz v = random_below(bound, rng);
    EXPECT_TRUE(v < bound);
    EXPECT_FALSE(v.is_negative());
  }
}

TEST(Prime, RandomBitsExactWidth) {
  Rng rng(56);
  for (std::size_t bits : {9u, 33u, 65u, 100u}) {
    EXPECT_EQ(random_bits(bits, rng).bit_length(), bits);
  }
}

}  // namespace
}  // namespace wsp
