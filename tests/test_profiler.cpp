#include <gtest/gtest.h>

#include "kernels/regs.h"
#include "sim/cpu.h"
#include "xasm/program.h"

namespace wsp {
namespace {

using kernels::A0;
using kernels::T0;
using kernels::Z;

TEST(Profiler, CallCountsAndEdges) {
  xasm::Assembler a;
  a.func("leaf");
  a.addi(A0, A0, 1);
  a.ret();
  a.func("mid");
  a.prologue();
  a.call("leaf");
  a.call("leaf");
  a.epilogue();
  a.func("top");
  a.prologue();
  a.call("mid");
  a.call("leaf");
  a.epilogue();
  const auto prog = a.finish();
  sim::Cpu cpu(prog);
  cpu.call("top");

  const auto& funcs = cpu.profiler().functions();
  EXPECT_EQ(funcs.at("top").calls, 1u);
  EXPECT_EQ(funcs.at("mid").calls, 1u);
  EXPECT_EQ(funcs.at("leaf").calls, 3u);

  const auto& edges = cpu.profiler().edges();
  EXPECT_EQ(edges.at({"<host>", "top"}), 1u);
  EXPECT_EQ(edges.at({"top", "mid"}), 1u);
  EXPECT_EQ(edges.at({"mid", "leaf"}), 2u);
  EXPECT_EQ(edges.at({"top", "leaf"}), 1u);
}

TEST(Profiler, SelfPlusChildrenEqualsTotal) {
  xasm::Assembler a;
  a.func("leaf");
  a.addi(T0, Z, 1);
  a.addi(T0, Z, 2);
  a.ret();
  a.func("root");
  a.prologue();
  a.call("leaf");
  a.epilogue();
  const auto prog = a.finish();
  sim::Cpu cpu(prog);
  cpu.call("root");

  const auto& funcs = cpu.profiler().functions();
  const auto& root = funcs.at("root");
  const auto& leaf = funcs.at("leaf");
  EXPECT_EQ(root.total_cycles, root.self_cycles + leaf.total_cycles);
  EXPECT_GT(leaf.self_cycles, 0u);
  EXPECT_EQ(leaf.self_cycles, leaf.total_cycles);
}

TEST(Profiler, FormatContainsWeightedEdges) {
  xasm::Assembler a;
  a.func("child");
  a.ret();
  a.func("parent");
  a.prologue();
  a.call("child");
  a.call("child");
  a.call("child");
  a.epilogue();
  const auto prog = a.finish();
  sim::Cpu cpu(prog);
  cpu.call("parent");
  const std::string graph = cpu.profiler().format_call_graph();
  EXPECT_NE(graph.find("parent -> child x3"), std::string::npos) << graph;
}

TEST(Profiler, ResetStatsClears) {
  xasm::Assembler a;
  a.func("f");
  a.ret();
  const auto prog = a.finish();
  sim::Cpu cpu(prog);
  cpu.call("f");
  EXPECT_FALSE(cpu.profiler().functions().empty());
  cpu.reset_stats();
  EXPECT_TRUE(cpu.profiler().functions().empty());
  EXPECT_EQ(cpu.cycles(), 0u);
}

}  // namespace
}  // namespace wsp
