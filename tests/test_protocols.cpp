// CRC-32 and the WEP / IPsec-ESP protocol layers — the paper's
// "different layers of the protocol stack" claim: the same platform
// primitives serving link-, network- and transport-layer protocols.
// Includes the tamper-recovery suite (docs/faults.md): a corrupted
// transmission is rejected, and a clean retransmission — after rekeying
// where the channel state desynced — verifies; repair never silently
// accepts corrupted bytes.
#include <gtest/gtest.h>

#include "crypto/crc32.h"
#include "crypto/ct.h"
#include "crypto/sha1.h"
#include "ssl/esp.h"
#include "ssl/ssl.h"
#include "ssl/wep.h"

namespace wsp {
namespace {

TEST(CtEqual, AgreesWithOperatorEq) {
  Rng rng(520);
  const auto a = rng.bytes(64);
  auto b = a;
  EXPECT_TRUE(ct::equal(a, b));
  b[63] ^= 0x01;  // last-byte difference: the case early exit leaks fastest
  EXPECT_FALSE(ct::equal(a, b));
  b = a;
  b[0] ^= 0x80;
  EXPECT_FALSE(ct::equal(a, b));
}

TEST(CtEqual, SizeMismatchAndEmpty) {
  const std::vector<std::uint8_t> a = {1, 2, 3}, b = {1, 2};
  EXPECT_FALSE(ct::equal(a, b));
  EXPECT_TRUE(ct::equal(std::vector<std::uint8_t>{}, std::vector<std::uint8_t>{}));
  EXPECT_TRUE(ct::equal(a.data(), a.data(), 0));
}

TEST(Crc32, KnownVectors) {
  const std::vector<std::uint8_t> check = {'1', '2', '3', '4', '5',
                                           '6', '7', '8', '9'};
  EXPECT_EQ(crc32(check), 0xCBF43926u);
  EXPECT_EQ(crc32(std::vector<std::uint8_t>{}), 0x00000000u);
  const std::vector<std::uint8_t> a = {'a'};
  EXPECT_EQ(crc32(a), 0xE8B7BE43u);
}

TEST(Crc32, DetectsBitFlips) {
  Rng rng(511);
  auto data = rng.bytes(256);
  const std::uint32_t before = crc32(data);
  data[100] ^= 0x01;
  EXPECT_NE(crc32(data), before);
}

TEST(Wep, SealOpenRoundTrip) {
  Rng rng(512);
  const auto key = rng.bytes(13);  // WEP-104
  for (std::size_t len : {1u, 64u, 1500u}) {
    const auto payload = rng.bytes(len);
    const auto frame = wep::seal(payload, key, rng);
    EXPECT_LE(frame.iv, 0xFFFFFFu);
    EXPECT_EQ(frame.ciphertext.size(), len + 4);
    EXPECT_NE(frame.ciphertext, payload);
    EXPECT_EQ(wep::open(frame, key), payload);
  }
}

TEST(Wep, Wep40KeysSupported) {
  Rng rng(513);
  const auto key = rng.bytes(5);
  const auto payload = rng.bytes(100);
  const auto frame = wep::seal(payload, key, rng);
  EXPECT_EQ(wep::open(frame, key), payload);
}

TEST(Wep, CorruptionDetected) {
  Rng rng(514);
  const auto key = rng.bytes(13);
  auto frame = wep::seal(rng.bytes(64), key, rng);
  frame.ciphertext[10] ^= 0x40;
  EXPECT_THROW(wep::open(frame, key), std::runtime_error);
}

TEST(Wep, IcvOnlyForgeryRejected) {
  // The trailing 4 ciphertext bytes carry the ICV; flip only its last byte.
  Rng rng(521);
  const auto key = rng.bytes(13);
  auto frame = wep::seal(rng.bytes(64), key, rng);
  frame.ciphertext.back() ^= 0x01;
  EXPECT_THROW(wep::open(frame, key), std::runtime_error);
}

TEST(Wep, WrongKeyRejectedByIcv) {
  Rng rng(515);
  const auto key = rng.bytes(13);
  auto other = key;
  other[0] ^= 1;
  const auto frame = wep::seal(rng.bytes(64), key, rng);
  EXPECT_THROW(wep::open(frame, other), std::runtime_error);
}

TEST(Wep, BadKeyLengthRejected) {
  Rng rng(516);
  EXPECT_THROW(wep::seal({1, 2, 3}, rng.bytes(7), rng), std::invalid_argument);
}

class EspTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(517);
    sa_.spi = 0x1001;
    sa_.enc_key = rng.bytes(24);
    sa_.auth_key = rng.bytes(20);
  }
  esp::Sa sa_;
  Rng rng_{518};
};

TEST_F(EspTest, SealOpenRoundTripVariousSizes) {
  for (std::size_t len : {0u, 1u, 7u, 8u, 100u, 1400u}) {
    esp::Sa receiver = sa_;
    const auto payload = rng_.bytes(len);
    const auto packet = esp::seal(sa_, payload, rng_);
    std::uint32_t seq = 0;
    EXPECT_EQ(esp::open(receiver, packet, &seq), payload) << "len=" << len;
    EXPECT_EQ(seq, sa_.seq);
  }
}

TEST_F(EspTest, SequenceNumbersIncrease) {
  std::uint32_t s1 = 0, s2 = 0;
  const auto p1 = esp::seal(sa_, {1}, rng_);
  const auto p2 = esp::seal(sa_, {2}, rng_);
  esp::open(sa_, p1, &s1);
  esp::open(sa_, p2, &s2);
  EXPECT_EQ(s2, s1 + 1);
}

TEST_F(EspTest, TamperingRejected) {
  auto packet = esp::seal(sa_, rng_.bytes(64), rng_);
  packet[20] ^= 0x80;
  EXPECT_THROW(esp::open(sa_, packet, nullptr), std::runtime_error);
}

TEST_F(EspTest, IcvOnlyForgeryRejected) {
  // Body intact, last ICV byte flipped: exercises the constant-time tail.
  auto packet = esp::seal(sa_, rng_.bytes(64), rng_);
  packet.back() ^= 0x01;
  EXPECT_THROW(esp::open(sa_, packet, nullptr), std::runtime_error);
}

TEST_F(EspTest, WrongSpiRejected) {
  const auto packet = esp::seal(sa_, rng_.bytes(16), rng_);
  esp::Sa other = sa_;
  other.spi = 0x2002;
  EXPECT_THROW(esp::open(other, packet, nullptr), std::runtime_error);
}

TEST_F(EspTest, TruncatedPacketRejected) {
  auto packet = esp::seal(sa_, rng_.bytes(16), rng_);
  packet.resize(20);
  EXPECT_THROW(esp::open(sa_, packet, nullptr), std::runtime_error);
}

// --- Tamper-recovery: corruption -> rejection -> retransmit (+rekey) ----

/// Key material for one direction of a record channel, as the handshake's
/// key block would provide it.  make() mints an independent SecureChannel
/// over the CURRENT material (SecureChannel is a shared handle, so copying
/// one would alias its state machine); rekey() derives fresh material —
/// the protocol-layer shape of the server's repair ladder.
struct ChannelKeys {
  explicit ChannelKeys(ssl::Cipher cipher) : cipher_(cipher), rng_(777) {
    rekey();
  }

  void rekey() {
    key_ = rng_.bytes(ssl::cipher_profile(cipher_).key_len);
    mac_ = rng_.bytes(Sha1::kDigestSize);
    iv_ = rng_.bytes(ssl::cipher_profile(cipher_).iv_len);
  }

  ssl::SecureChannel make() const {
    return ssl::SecureChannel(cipher_, key_, mac_, iv_);
  }

  ssl::Cipher cipher_;
  Rng rng_;
  std::vector<std::uint8_t> key_, mac_, iv_;
};

// SSL record MAC, stream cipher: a tampered record is rejected, and the
// plain retransmission of the SAME payload verifies — sequence numbers and
// keystream stay aligned across the rejected record.
TEST(TamperRecovery, SslRc4RecordRecoversByRetransmit) {
  ChannelKeys ch(ssl::Cipher::kRc4);
  ssl::SecureChannel sender = ch.make();
  ssl::SecureChannel receiver = ch.make();
  Rng rng(900);
  const auto payload = rng.bytes(200);

  auto tampered = sender.seal(payload);
  tampered.back() ^= 0x01;
  EXPECT_THROW(receiver.open(tampered), std::runtime_error);

  // Retransmit: re-seal the same payload; it must verify AND match.
  const auto retransmit = sender.seal(payload);
  EXPECT_EQ(receiver.open(retransmit), payload);
}

// SSL record MAC, CBC ciphers: the tampered record desyncs the receiver's
// chaining state, so retransmission alone keeps failing — but re-deriving
// both channels (the rekey leg of the repair ladder) recovers the stream.
TEST(TamperRecovery, SslCbcRecordRecoversAfterRekey) {
  for (ssl::Cipher cipher :
       {ssl::Cipher::kAes128Cbc, ssl::Cipher::kTripleDesCbc}) {
    SCOPED_TRACE(static_cast<int>(cipher));
    ChannelKeys ch(cipher);
    ssl::SecureChannel sender = ch.make();
    ssl::SecureChannel receiver = ch.make();
    Rng rng(901);
    const auto payload = rng.bytes(200);

    auto tampered = sender.seal(payload);
    tampered.back() ^= 0x01;  // last block: poisons the chained IV too
    EXPECT_THROW(receiver.open(tampered), std::runtime_error);

    // Rekey: fresh key block, fresh channels both ends, clean retransmit.
    ch.rekey();
    ssl::SecureChannel sender2 = ch.make();
    ssl::SecureChannel receiver2 = ch.make();
    const auto retransmit = sender2.seal(payload);
    EXPECT_EQ(receiver2.open(retransmit), payload);
  }
}

// Repair must never silently accept corrupted bytes: every corrupted copy
// of the record is rejected even while clean retransmissions succeed.
TEST(TamperRecovery, SslRepairNeverAcceptsCorruptedBytes) {
  ChannelKeys ch(ssl::Cipher::kRc4);
  ssl::SecureChannel sender = ch.make();
  ssl::SecureChannel receiver = ch.make();
  Rng rng(902);
  const auto payload = rng.bytes(64);
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto wire = sender.seal(payload);
    wire.back() ^= static_cast<std::uint8_t>(1u << attempt);
    EXPECT_THROW(receiver.open(wire), std::runtime_error)
        << "attempt " << attempt;
  }
  EXPECT_EQ(receiver.open(sender.seal(payload)), payload);
}

// WEP ICV: frames are self-contained (IV on the wire), so recovery is pure
// retransmission — the corrupted frame is rejected, the re-sealed one
// opens, and the corrupted one STAYS rejected afterwards.
TEST(Wep, CorruptedFrameRecoversByRetransmit) {
  Rng rng(903);
  const auto key = rng.bytes(13);
  const auto payload = rng.bytes(128);
  auto frame = wep::seal(payload, key, rng);
  auto corrupted = frame;
  corrupted.ciphertext.back() ^= 0x10;  // ICV tail
  EXPECT_THROW(wep::open(corrupted, key), std::runtime_error);

  const auto retransmit = wep::seal(payload, key, rng);  // fresh IV
  EXPECT_EQ(wep::open(retransmit, key), payload);
  EXPECT_THROW(wep::open(corrupted, key), std::runtime_error)
      << "recovery must not whitelist the corrupted frame";
}

// ESP ICV: a tampered packet is rejected without disturbing the SA, so the
// retransmitted packet (next sequence number) verifies.
TEST_F(EspTest, CorruptedPacketRecoversByRetransmit) {
  const auto payload = rng_.bytes(96);
  auto packet = esp::seal(sa_, payload, rng_);
  auto corrupted = packet;
  corrupted.back() ^= 0x01;  // ICV tail
  EXPECT_THROW(esp::open(sa_, corrupted, nullptr), std::runtime_error);

  const auto retransmit = esp::seal(sa_, payload, rng_);
  std::uint32_t seq = 0;
  EXPECT_EQ(esp::open(sa_, retransmit, &seq), payload);
  EXPECT_EQ(seq, sa_.seq);
  EXPECT_THROW(esp::open(sa_, corrupted, nullptr), std::runtime_error)
      << "recovery must not whitelist the corrupted packet";
}

TEST_F(EspTest, IvRandomizesCiphertext) {
  const auto payload = rng_.bytes(32);
  const auto p1 = esp::seal(sa_, payload, rng_);
  const auto p2 = esp::seal(sa_, payload, rng_);
  // Different IVs => different ciphertext even for identical payloads.
  EXPECT_NE(std::vector<std::uint8_t>(p1.begin() + 16, p1.end() - 12),
            std::vector<std::uint8_t>(p2.begin() + 16, p2.end() - 12));
}

}  // namespace
}  // namespace wsp
