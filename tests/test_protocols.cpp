// CRC-32 and the WEP / IPsec-ESP protocol layers — the paper's
// "different layers of the protocol stack" claim: the same platform
// primitives serving link-, network- and transport-layer protocols.
#include <gtest/gtest.h>

#include "crypto/crc32.h"
#include "crypto/ct.h"
#include "ssl/esp.h"
#include "ssl/wep.h"

namespace wsp {
namespace {

TEST(CtEqual, AgreesWithOperatorEq) {
  Rng rng(520);
  const auto a = rng.bytes(64);
  auto b = a;
  EXPECT_TRUE(ct::equal(a, b));
  b[63] ^= 0x01;  // last-byte difference: the case early exit leaks fastest
  EXPECT_FALSE(ct::equal(a, b));
  b = a;
  b[0] ^= 0x80;
  EXPECT_FALSE(ct::equal(a, b));
}

TEST(CtEqual, SizeMismatchAndEmpty) {
  const std::vector<std::uint8_t> a = {1, 2, 3}, b = {1, 2};
  EXPECT_FALSE(ct::equal(a, b));
  EXPECT_TRUE(ct::equal(std::vector<std::uint8_t>{}, std::vector<std::uint8_t>{}));
  EXPECT_TRUE(ct::equal(a.data(), a.data(), 0));
}

TEST(Crc32, KnownVectors) {
  const std::vector<std::uint8_t> check = {'1', '2', '3', '4', '5',
                                           '6', '7', '8', '9'};
  EXPECT_EQ(crc32(check), 0xCBF43926u);
  EXPECT_EQ(crc32(std::vector<std::uint8_t>{}), 0x00000000u);
  const std::vector<std::uint8_t> a = {'a'};
  EXPECT_EQ(crc32(a), 0xE8B7BE43u);
}

TEST(Crc32, DetectsBitFlips) {
  Rng rng(511);
  auto data = rng.bytes(256);
  const std::uint32_t before = crc32(data);
  data[100] ^= 0x01;
  EXPECT_NE(crc32(data), before);
}

TEST(Wep, SealOpenRoundTrip) {
  Rng rng(512);
  const auto key = rng.bytes(13);  // WEP-104
  for (std::size_t len : {1u, 64u, 1500u}) {
    const auto payload = rng.bytes(len);
    const auto frame = wep::seal(payload, key, rng);
    EXPECT_LE(frame.iv, 0xFFFFFFu);
    EXPECT_EQ(frame.ciphertext.size(), len + 4);
    EXPECT_NE(frame.ciphertext, payload);
    EXPECT_EQ(wep::open(frame, key), payload);
  }
}

TEST(Wep, Wep40KeysSupported) {
  Rng rng(513);
  const auto key = rng.bytes(5);
  const auto payload = rng.bytes(100);
  const auto frame = wep::seal(payload, key, rng);
  EXPECT_EQ(wep::open(frame, key), payload);
}

TEST(Wep, CorruptionDetected) {
  Rng rng(514);
  const auto key = rng.bytes(13);
  auto frame = wep::seal(rng.bytes(64), key, rng);
  frame.ciphertext[10] ^= 0x40;
  EXPECT_THROW(wep::open(frame, key), std::runtime_error);
}

TEST(Wep, IcvOnlyForgeryRejected) {
  // The trailing 4 ciphertext bytes carry the ICV; flip only its last byte.
  Rng rng(521);
  const auto key = rng.bytes(13);
  auto frame = wep::seal(rng.bytes(64), key, rng);
  frame.ciphertext.back() ^= 0x01;
  EXPECT_THROW(wep::open(frame, key), std::runtime_error);
}

TEST(Wep, WrongKeyRejectedByIcv) {
  Rng rng(515);
  const auto key = rng.bytes(13);
  auto other = key;
  other[0] ^= 1;
  const auto frame = wep::seal(rng.bytes(64), key, rng);
  EXPECT_THROW(wep::open(frame, other), std::runtime_error);
}

TEST(Wep, BadKeyLengthRejected) {
  Rng rng(516);
  EXPECT_THROW(wep::seal({1, 2, 3}, rng.bytes(7), rng), std::invalid_argument);
}

class EspTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(517);
    sa_.spi = 0x1001;
    sa_.enc_key = rng.bytes(24);
    sa_.auth_key = rng.bytes(20);
  }
  esp::Sa sa_;
  Rng rng_{518};
};

TEST_F(EspTest, SealOpenRoundTripVariousSizes) {
  for (std::size_t len : {0u, 1u, 7u, 8u, 100u, 1400u}) {
    esp::Sa receiver = sa_;
    const auto payload = rng_.bytes(len);
    const auto packet = esp::seal(sa_, payload, rng_);
    std::uint32_t seq = 0;
    EXPECT_EQ(esp::open(receiver, packet, &seq), payload) << "len=" << len;
    EXPECT_EQ(seq, sa_.seq);
  }
}

TEST_F(EspTest, SequenceNumbersIncrease) {
  std::uint32_t s1 = 0, s2 = 0;
  const auto p1 = esp::seal(sa_, {1}, rng_);
  const auto p2 = esp::seal(sa_, {2}, rng_);
  esp::open(sa_, p1, &s1);
  esp::open(sa_, p2, &s2);
  EXPECT_EQ(s2, s1 + 1);
}

TEST_F(EspTest, TamperingRejected) {
  auto packet = esp::seal(sa_, rng_.bytes(64), rng_);
  packet[20] ^= 0x80;
  EXPECT_THROW(esp::open(sa_, packet, nullptr), std::runtime_error);
}

TEST_F(EspTest, IcvOnlyForgeryRejected) {
  // Body intact, last ICV byte flipped: exercises the constant-time tail.
  auto packet = esp::seal(sa_, rng_.bytes(64), rng_);
  packet.back() ^= 0x01;
  EXPECT_THROW(esp::open(sa_, packet, nullptr), std::runtime_error);
}

TEST_F(EspTest, WrongSpiRejected) {
  const auto packet = esp::seal(sa_, rng_.bytes(16), rng_);
  esp::Sa other = sa_;
  other.spi = 0x2002;
  EXPECT_THROW(esp::open(other, packet, nullptr), std::runtime_error);
}

TEST_F(EspTest, TruncatedPacketRejected) {
  auto packet = esp::seal(sa_, rng_.bytes(16), rng_);
  packet.resize(20);
  EXPECT_THROW(esp::open(sa_, packet, nullptr), std::runtime_error);
}

TEST_F(EspTest, IvRandomizesCiphertext) {
  const auto payload = rng_.bytes(32);
  const auto p1 = esp::seal(sa_, payload, rng_);
  const auto p2 = esp::seal(sa_, payload, rng_);
  // Different IVs => different ciphertext even for identical payloads.
  EXPECT_NE(std::vector<std::uint8_t>(p1.begin() + 16, p1.end() - 12),
            std::vector<std::uint8_t>(p2.begin() + 16, p2.end() - 12));
}

}  // namespace
}  // namespace wsp
