#include <gtest/gtest.h>

#include "crypto/rc4.h"
#include "support/hex.h"

namespace wsp {
namespace {

std::vector<std::uint8_t> bytes_of(const char* s) {
  return std::vector<std::uint8_t>(s, s + std::string(s).size());
}

TEST(Rc4, ClassicVectors) {
  {
    Rc4 rc4(bytes_of("Key"));
    EXPECT_EQ(to_hex(rc4.process(bytes_of("Plaintext"))), "bbf316e8d940af0ad3");
  }
  {
    Rc4 rc4(bytes_of("Wiki"));
    EXPECT_EQ(to_hex(rc4.process(bytes_of("pedia"))), "1021bf0420");
  }
  {
    Rc4 rc4(bytes_of("Secret"));
    EXPECT_EQ(to_hex(rc4.process(bytes_of("Attack at dawn"))),
              "45a01f645fc35b383552544b9bf5");
  }
}

TEST(Rc4, EncryptDecryptSymmetry) {
  const auto key = bytes_of("sessionkey");
  const auto data = bytes_of("some longer message with structure 1234567890");
  Rc4 enc(key), dec(key);
  EXPECT_EQ(dec.process(enc.process(data)), data);
}

TEST(Rc4, EmptyKeyRejected) {
  EXPECT_THROW(Rc4{std::vector<std::uint8_t>{}}, std::invalid_argument);
}

TEST(Rc4, StreamContinuity) {
  // Processing in two pieces must equal processing at once.
  const auto key = bytes_of("k");
  const auto data = bytes_of("abcdefghij");
  Rc4 whole(key);
  const auto all = whole.process(data);
  Rc4 split(key);
  auto first = split.process(std::vector<std::uint8_t>(data.begin(), data.begin() + 4));
  auto second = split.process(std::vector<std::uint8_t>(data.begin() + 4, data.end()));
  first.insert(first.end(), second.begin(), second.end());
  EXPECT_EQ(first, all);
}

}  // namespace
}  // namespace wsp
