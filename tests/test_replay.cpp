// Tests for the wsp-replay-v1 codec (support/replay.h) and the engine
// run-record mapping (server/record.h): primitive round trips, randomized
// event-stream round trips, rejection of truncated/corrupted/version-skewed
// streams with typed errors, and RunRecord encode/decode identity.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <vector>

#include "crypto/crc32.h"
#include "server/record.h"
#include "support/random.h"
#include "support/replay.h"

namespace wsp {
namespace {

using replay::Chunk;
using replay::ChunkReader;
using replay::ChunkWriter;
using replay::Cursor;
using replay::ErrorKind;
using replay::ReplayError;
using replay::VectorSink;

// --- primitives ------------------------------------------------------------

TEST(ReplayCodec, VarintRoundTripBoundaries) {
  const std::uint64_t values[] = {0,
                                  1,
                                  0x7F,
                                  0x80,
                                  0x3FFF,
                                  0x4000,
                                  1234567890123ULL,
                                  std::numeric_limits<std::uint64_t>::max()};
  std::vector<std::uint8_t> buf;
  for (std::uint64_t v : values) replay::put_varint(buf, v);
  Cursor c(buf);
  for (std::uint64_t v : values) EXPECT_EQ(c.varint(), v);
  EXPECT_TRUE(c.done());
}

TEST(ReplayCodec, ZigzagRoundTripIncludingNegatives) {
  const std::int64_t values[] = {0, -1, 1, -2, 63, -64,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  std::vector<std::uint8_t> buf;
  for (std::int64_t v : values) replay::put_zigzag(buf, v);
  Cursor c(buf);
  for (std::int64_t v : values) EXPECT_EQ(c.zigzag(), v);
  EXPECT_TRUE(c.done());
}

TEST(ReplayCodec, DoubleRoundTripIsBitExact) {
  const double values[] = {0.0, -0.0, 1.0 / 3.0, 1e300, -2.5e-308,
                           239.31498, std::numeric_limits<double>::infinity()};
  std::vector<std::uint8_t> buf;
  for (double v : values) replay::put_double(buf, v);
  Cursor c(buf);
  for (double v : values) {
    const double got = c.f64();
    EXPECT_EQ(std::memcmp(&got, &v, sizeof v), 0);
  }
}

TEST(ReplayCodec, StringRoundTripAndTruncation) {
  const std::string with_nul("git\0rev", 7);  // length-prefixed: NUL-safe
  std::vector<std::uint8_t> buf;
  replay::put_string(buf, with_nul);
  replay::put_string(buf, "");
  Cursor c(buf);
  EXPECT_EQ(c.str(), with_nul);
  EXPECT_EQ(c.str(), "");
  EXPECT_TRUE(c.done());

  // A declared length longer than the remaining bytes must throw, not read.
  std::vector<std::uint8_t> lying;
  replay::put_varint(lying, 100);
  lying.push_back('x');
  Cursor bad(lying);
  try {
    (void)bad.str();
    FAIL() << "expected ReplayError";
  } catch (const ReplayError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kTruncated);
  }
}

TEST(ReplayCodec, VarintOverflowRejected) {
  // 10 continuation bytes followed by more: value would exceed 64 bits.
  std::vector<std::uint8_t> buf(11, 0xFF);
  Cursor c(buf);
  try {
    (void)c.varint();
    FAIL() << "expected ReplayError";
  } catch (const ReplayError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kVarintOverflow);
  }
}

// --- chunk framing ---------------------------------------------------------

std::vector<std::uint8_t> two_chunk_stream() {
  VectorSink sink;
  ChunkWriter writer(sink);
  writer.chunk(7, {1, 2, 3});
  writer.chunk(9, {});
  writer.end();
  return sink.take();
}

TEST(ReplayChunks, RoundTripPreservesTagsAndPayloads) {
  const auto bytes = two_chunk_stream();
  ChunkReader reader(bytes);
  EXPECT_EQ(reader.version(), replay::kFormatVersion);
  auto c1 = reader.next();
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(c1->tag, 7u);
  EXPECT_EQ(c1->payload, (std::vector<std::uint8_t>{1, 2, 3}));
  auto c2 = reader.next();
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->tag, 9u);
  EXPECT_TRUE(c2->payload.empty());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());  // stays ended
}

TEST(ReplayChunks, EveryTruncationPointRejected) {
  const auto bytes = two_chunk_stream();
  // Cutting the stream at any length short of the full one must throw a
  // typed error — either immediately (header) or while iterating.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
    bool threw = false;
    try {
      ChunkReader reader(prefix);
      while (reader.next().has_value()) {
      }
    } catch (const ReplayError& e) {
      threw = true;
      EXPECT_TRUE(e.kind() == ErrorKind::kTruncated ||
                  e.kind() == ErrorKind::kCrcMismatch)
          << "cut=" << cut << " kind=" << replay::to_string(e.kind());
    }
    EXPECT_TRUE(threw) << "truncation at " << cut << " went undetected";
  }
}

TEST(ReplayChunks, EverySingleByteCorruptionRejected) {
  const auto clean = two_chunk_stream();
  // Flip one bit in every byte position past the magic; the CRC framing (or
  // the header checks) must catch each one.  Magic-byte corruption is
  // kBadMagic; version-byte corruption is kVersionSkew.
  for (std::size_t pos = 0; pos < clean.size(); ++pos) {
    std::vector<std::uint8_t> bytes = clean;
    bytes[pos] ^= 0x01;
    bool threw = false;
    try {
      ChunkReader reader(bytes);
      while (reader.next().has_value()) {
      }
    } catch (const ReplayError&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << "corruption at byte " << pos << " went undetected";
  }
}

TEST(ReplayChunks, VersionSkewFailsLoudlyWithTypedError) {
  // Hand-craft a stream whose header claims format version 2: a future (or
  // stale) trace must be rejected before any chunk is trusted.
  std::vector<std::uint8_t> bytes(replay::kMagic, replay::kMagic + 4);
  replay::put_varint(bytes, replay::kFormatVersion + 1);
  try {
    ChunkReader reader(bytes);
    FAIL() << "expected ReplayError";
  } catch (const ReplayError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kVersionSkew);
    EXPECT_NE(std::string(e.what()).find("version 2"), std::string::npos);
  }
}

TEST(ReplayChunks, BadMagicRejected) {
  std::vector<std::uint8_t> bytes = {'N', 'O', 'P', 'E', 1};
  try {
    ChunkReader reader(bytes);
    FAIL() << "expected ReplayError";
  } catch (const ReplayError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kBadMagic);
  }
}

// --- randomized event-stream round trips -----------------------------------

server::SessionEvent random_event(Rng& rng, std::uint64_t id) {
  server::SessionEvent ev;
  ev.id = id;
  ev.shard = static_cast<std::uint32_t>(rng.below(16));
  ev.wire_bytes = rng.below(1 << 20);
  ev.records = rng.below(256);
  ev.retries = static_cast<std::uint32_t>(rng.below(8));
  ev.repairs = static_cast<std::uint32_t>(rng.below(4));
  ev.faults = static_cast<std::uint32_t>(rng.below(8));
  ev.completed = rng.below(8) != 0;
  return ev;
}

// Round-trips randomized event streams through the full RunRecord codec:
// encode -> decode must be the identity on every field, for many seeds.
TEST(ReplayRunRecord, RandomizedEventStreamsRoundTrip) {
  for (std::uint64_t seed : {1ULL, 42ULL, 12345ULL}) {
    Rng rng(seed);
    server::RunRecord rec;
    rec.git_rev = "testrev";
    rec.recorded_threads = 3;
    rec.scenario.seed = seed;
    rec.scenario.sessions = 500;
    rec.config.shards = 16;
    rec.report.shards.resize(16);
    std::uint64_t id = 0;
    for (int i = 0; i < 500; ++i) {
      id += 1 + rng.below(3);  // gaps model dropped arrivals
      const auto ev = random_event(rng, id);
      rec.report.events.push_back(ev);
      auto& sh = rec.report.shards[ev.shard];
      sh.events_digest = (sh.events_digest ^ ev.digest()) * 1099511628211ULL + 1;
    }
    rec.report.admitted = rec.report.events.size();
    rec.report.latency = {1.5e6, 3.0e6, 4.5e6, 6.0e6};
    rec.report.throughput_per_gcycle = 239.31498;

    const auto bytes = server::encode_run_record(rec);
    const server::RunRecord back = server::decode_run_record(bytes);
    EXPECT_EQ(back.git_rev, "testrev");
    EXPECT_EQ(back.recorded_threads, 3u);
    EXPECT_EQ(back.scenario.seed, seed);
    EXPECT_EQ(back.scenario.sessions, 500u);
    EXPECT_EQ(back.config.shards, 16u);
    ASSERT_EQ(back.report.events.size(), rec.report.events.size());
    for (std::size_t i = 0; i < rec.report.events.size(); ++i) {
      EXPECT_EQ(back.report.events[i], rec.report.events[i]) << "event " << i;
    }
    for (std::size_t s = 0; s < 16; ++s) {
      EXPECT_EQ(back.report.shards[s].events_digest,
                rec.report.shards[s].events_digest);
    }
    EXPECT_EQ(back.report.latency.p99, 4.5e6);
    EXPECT_EQ(back.report.throughput_per_gcycle, 239.31498);
  }
}

TEST(ReplayRunRecord, EncodingIsDeterministic) {
  server::RunRecord rec;
  rec.git_rev = "r";
  rec.scenario.sessions = 8;
  rec.config.shards = 2;
  rec.report.shards.resize(2);
  EXPECT_EQ(server::encode_run_record(rec), server::encode_run_record(rec));
}

TEST(ReplayRunRecord, MissingChunkIsMalformed) {
  // A structurally valid stream (header + end chunk only) is not a run
  // record; it must fail with kMalformed, not decode to an empty record.
  VectorSink sink;
  ChunkWriter writer(sink);
  writer.end();
  try {
    (void)server::decode_run_record(sink.bytes());
    FAIL() << "expected ReplayError";
  } catch (const ReplayError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kMalformed);
  }
}

TEST(ReplayRunRecord, UnknownChunkTagsAreSkipped) {
  server::RunRecord rec;
  rec.git_rev = "r";
  rec.scenario.sessions = 4;
  rec.config.shards = 1;
  rec.report.shards.resize(1);
  auto bytes = server::encode_run_record(rec);
  // Splice an unknown (future) chunk after the header: the decoder must
  // skip it and still find every required chunk.
  VectorSink sink;
  ChunkWriter writer(sink);
  writer.chunk(99, {0xAA, 0xBB});
  const auto& extra = sink.bytes();
  const std::size_t header = 5;  // magic + version varint
  std::vector<std::uint8_t> spliced;
  const auto append = [&spliced](const std::vector<std::uint8_t>& src,
                                 std::size_t from, std::size_t to) {
    for (std::size_t i = from; i < to; ++i) spliced.push_back(src[i]);
  };
  append(bytes, 0, header);
  append(extra, header, extra.size());
  append(bytes, header, bytes.size());
  const server::RunRecord back = server::decode_run_record(spliced);
  EXPECT_EQ(back.scenario.sessions, 4u);
}

// Legacy traces predate the phased-program fields and the kScenarioSource
// chunk: a record encoded without them must decode as a flat scenario with
// no phases and no embedded source (version-skew, old-writer direction).
TEST(ReplayRunRecord, LegacyRecordDecodesAsFlatScenarioWithoutSource) {
  server::RunRecord rec;
  rec.git_rev = "legacy";
  rec.scenario.sessions = 6;
  rec.scenario.ciphers = {ssl::Cipher::kRc4};
  rec.scenario.transaction_sizes = {512};
  rec.config.shards = 2;
  rec.report.shards.resize(2);
  // No phases, no source: the writer emits the flat trailing layout and no
  // kScenarioSource chunk, exactly like a pre-phase binary would.
  const auto bytes = server::encode_run_record(rec);
  const server::RunRecord back = server::decode_run_record(bytes);
  EXPECT_TRUE(back.scenario.phases.empty());
  EXPECT_FALSE(back.scenario.phased());
  EXPECT_TRUE(back.scenario_source.empty());
  EXPECT_EQ(back.scenario.sessions, 6u);
}

// New-writer direction: phased programs and the embedded .wsp source ride
// in the stream and round-trip field-for-field.
TEST(ReplayRunRecord, PhasedRecordRoundTripsPhasesAndSource) {
  server::RunRecord rec;
  rec.git_rev = "phased";
  rec.scenario.seed = 99;
  server::TrafficPhase ph;
  ph.name = "spike";
  ph.sessions = 12;
  ph.model = server::ArrivalModel::kClosedLoop;
  ph.offered_load = 2.5;
  ph.users = 3;
  ph.think_cycles = 1e4;
  ph.resume_fraction = 0.25;
  ph.cipher_mix = {{ssl::Cipher::kAes128Cbc, 2}, {ssl::Cipher::kTripleDesCbc, 1}};
  ph.size_mix = {{1024, 3}, {4096, 1}};
  server::FaultConfig faults;
  faults.wire_flip_rate = 0.125;
  faults.record_retry_budget = 3;
  ph.faults = faults;
  rec.scenario.phases = {ph};
  rec.scenario.sessions = rec.scenario.total_sessions();
  rec.scenario_source = "scenario { phase \"spike\" { sessions 12 } }\n";
  rec.config.shards = 1;
  rec.report.shards.resize(1);

  const auto bytes = server::encode_run_record(rec);
  const server::RunRecord back = server::decode_run_record(bytes);
  EXPECT_EQ(back.scenario_source, rec.scenario_source);
  ASSERT_EQ(back.scenario.phases.size(), 1u);
  const server::TrafficPhase& b = back.scenario.phases[0];
  EXPECT_EQ(b.name, "spike");
  EXPECT_EQ(b.sessions, 12u);
  EXPECT_EQ(b.model, server::ArrivalModel::kClosedLoop);
  EXPECT_EQ(b.offered_load, 2.5);
  EXPECT_EQ(b.users, 3u);
  EXPECT_EQ(b.think_cycles, 1e4);
  EXPECT_EQ(b.resume_fraction, 0.25);
  ASSERT_EQ(b.cipher_mix.size(), 2u);
  EXPECT_EQ(b.cipher_mix[0].cipher, ssl::Cipher::kAes128Cbc);
  EXPECT_EQ(b.cipher_mix[0].weight, 2u);
  EXPECT_EQ(b.cipher_mix[1].cipher, ssl::Cipher::kTripleDesCbc);
  ASSERT_EQ(b.size_mix.size(), 2u);
  EXPECT_EQ(b.size_mix[0].bytes, 1024u);
  EXPECT_EQ(b.size_mix[0].weight, 3u);
  ASSERT_TRUE(b.faults.has_value());
  EXPECT_EQ(b.faults->wire_flip_rate, 0.125);
  EXPECT_EQ(b.faults->record_retry_budget, 3u);
}

// A phase entry naming a cipher id this binary does not know is hostile or
// future data, not something to guess at: kMalformed.
TEST(ReplayRunRecord, PhaseWithUnknownCipherIdIsMalformed) {
  server::RunRecord rec;
  rec.git_rev = "r";
  server::TrafficPhase ph;
  ph.name = "p";
  ph.sessions = 1;
  ph.cipher_mix = {{ssl::Cipher::kRc4, 1}};
  ph.size_mix = {{256, 1}};
  rec.scenario.phases = {ph};
  rec.config.shards = 1;
  rec.report.shards.resize(1);
  auto bytes = server::encode_run_record(rec);
  // Corrupt the encoded cipher id byte: flip the byte that encodes kRc4's
  // wire id inside the phase mix.  Rather than chase the offset, decode on
  // every single-byte 0x7F overwrite and require either a successful decode
  // or a typed ReplayError -- never a crash or a silent bad value.
  std::size_t typed_rejections = 0;
  for (std::size_t i = 5; i < bytes.size(); ++i) {
    auto corrupted = bytes;
    corrupted[i] = 0x7F;
    try {
      (void)server::decode_run_record(corrupted);
    } catch (const ReplayError&) {
      ++typed_rejections;
    }
  }
  EXPECT_GT(typed_rejections, 0u);
}

TEST(ReplayRunRecord, FileRoundTrip) {
  server::RunRecord rec;
  rec.git_rev = "filetest";
  rec.scenario.sessions = 4;
  rec.config.shards = 2;
  rec.report.shards.resize(2);
  const std::string path = ::testing::TempDir() + "/roundtrip.wspr";
  ASSERT_TRUE(server::write_run_record_file(rec, path));
  const server::RunRecord back = server::read_run_record_file(path);
  EXPECT_EQ(back.git_rev, "filetest");
  std::remove(path.c_str());

  EXPECT_FALSE(server::write_run_record_file(rec, "/nonexistent-dir-xyz/x"));
  try {
    (void)server::read_run_record_file("/nonexistent-dir-xyz/x");
    FAIL() << "expected ReplayError";
  } catch (const ReplayError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kTruncated);
  }
}

TEST(ReplayCrc32Filter, MatchesOneShotCrc) {
  VectorSink sink;
  replay::Crc32Filter filter(sink);
  const std::uint8_t part1[] = {1, 2, 3};
  const std::uint8_t part2[] = {4, 5};
  filter.write(part1, sizeof part1);
  filter.write(part2, sizeof part2);
  const std::uint8_t whole[] = {1, 2, 3, 4, 5};
  EXPECT_EQ(filter.crc(), crc32(whole, sizeof whole));
  EXPECT_EQ(sink.bytes().size(), 5u);  // pass-through, unchanged
}

}  // namespace
}  // namespace wsp
