// Tests for the wsp-replay-v1 codec (support/replay.h) and the engine
// run-record mapping (server/record.h): primitive round trips, randomized
// event-stream round trips, rejection of truncated/corrupted/version-skewed
// streams with typed errors, and RunRecord encode/decode identity.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <vector>

#include "crypto/crc32.h"
#include "server/record.h"
#include "support/random.h"
#include "support/replay.h"

namespace wsp {
namespace {

using replay::Chunk;
using replay::ChunkReader;
using replay::ChunkWriter;
using replay::Cursor;
using replay::ErrorKind;
using replay::ReplayError;
using replay::VectorSink;

// --- primitives ------------------------------------------------------------

TEST(ReplayCodec, VarintRoundTripBoundaries) {
  const std::uint64_t values[] = {0,
                                  1,
                                  0x7F,
                                  0x80,
                                  0x3FFF,
                                  0x4000,
                                  1234567890123ULL,
                                  std::numeric_limits<std::uint64_t>::max()};
  std::vector<std::uint8_t> buf;
  for (std::uint64_t v : values) replay::put_varint(buf, v);
  Cursor c(buf);
  for (std::uint64_t v : values) EXPECT_EQ(c.varint(), v);
  EXPECT_TRUE(c.done());
}

TEST(ReplayCodec, ZigzagRoundTripIncludingNegatives) {
  const std::int64_t values[] = {0, -1, 1, -2, 63, -64,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  std::vector<std::uint8_t> buf;
  for (std::int64_t v : values) replay::put_zigzag(buf, v);
  Cursor c(buf);
  for (std::int64_t v : values) EXPECT_EQ(c.zigzag(), v);
  EXPECT_TRUE(c.done());
}

TEST(ReplayCodec, DoubleRoundTripIsBitExact) {
  const double values[] = {0.0, -0.0, 1.0 / 3.0, 1e300, -2.5e-308,
                           239.31498, std::numeric_limits<double>::infinity()};
  std::vector<std::uint8_t> buf;
  for (double v : values) replay::put_double(buf, v);
  Cursor c(buf);
  for (double v : values) {
    const double got = c.f64();
    EXPECT_EQ(std::memcmp(&got, &v, sizeof v), 0);
  }
}

TEST(ReplayCodec, StringRoundTripAndTruncation) {
  const std::string with_nul("git\0rev", 7);  // length-prefixed: NUL-safe
  std::vector<std::uint8_t> buf;
  replay::put_string(buf, with_nul);
  replay::put_string(buf, "");
  Cursor c(buf);
  EXPECT_EQ(c.str(), with_nul);
  EXPECT_EQ(c.str(), "");
  EXPECT_TRUE(c.done());

  // A declared length longer than the remaining bytes must throw, not read.
  std::vector<std::uint8_t> lying;
  replay::put_varint(lying, 100);
  lying.push_back('x');
  Cursor bad(lying);
  try {
    (void)bad.str();
    FAIL() << "expected ReplayError";
  } catch (const ReplayError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kTruncated);
  }
}

TEST(ReplayCodec, VarintOverflowRejected) {
  // 10 continuation bytes followed by more: value would exceed 64 bits.
  std::vector<std::uint8_t> buf(11, 0xFF);
  Cursor c(buf);
  try {
    (void)c.varint();
    FAIL() << "expected ReplayError";
  } catch (const ReplayError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kVarintOverflow);
  }
}

// --- chunk framing ---------------------------------------------------------

std::vector<std::uint8_t> two_chunk_stream() {
  VectorSink sink;
  ChunkWriter writer(sink);
  writer.chunk(7, {1, 2, 3});
  writer.chunk(9, {});
  writer.end();
  return sink.take();
}

TEST(ReplayChunks, RoundTripPreservesTagsAndPayloads) {
  const auto bytes = two_chunk_stream();
  ChunkReader reader(bytes);
  EXPECT_EQ(reader.version(), replay::kFormatVersion);
  auto c1 = reader.next();
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(c1->tag, 7u);
  EXPECT_EQ(c1->payload, (std::vector<std::uint8_t>{1, 2, 3}));
  auto c2 = reader.next();
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->tag, 9u);
  EXPECT_TRUE(c2->payload.empty());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());  // stays ended
}

TEST(ReplayChunks, EveryTruncationPointRejected) {
  const auto bytes = two_chunk_stream();
  // Cutting the stream at any length short of the full one must throw a
  // typed error — either immediately (header) or while iterating.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
    bool threw = false;
    try {
      ChunkReader reader(prefix);
      while (reader.next().has_value()) {
      }
    } catch (const ReplayError& e) {
      threw = true;
      EXPECT_TRUE(e.kind() == ErrorKind::kTruncated ||
                  e.kind() == ErrorKind::kCrcMismatch)
          << "cut=" << cut << " kind=" << replay::to_string(e.kind());
    }
    EXPECT_TRUE(threw) << "truncation at " << cut << " went undetected";
  }
}

TEST(ReplayChunks, EverySingleByteCorruptionRejected) {
  const auto clean = two_chunk_stream();
  // Flip one bit in every byte position past the magic; the CRC framing (or
  // the header checks) must catch each one.  Magic-byte corruption is
  // kBadMagic; version-byte corruption is kVersionSkew.
  for (std::size_t pos = 0; pos < clean.size(); ++pos) {
    std::vector<std::uint8_t> bytes = clean;
    bytes[pos] ^= 0x01;
    bool threw = false;
    try {
      ChunkReader reader(bytes);
      while (reader.next().has_value()) {
      }
    } catch (const ReplayError&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << "corruption at byte " << pos << " went undetected";
  }
}

TEST(ReplayChunks, VersionSkewFailsLoudlyWithTypedError) {
  // Hand-craft a stream whose header claims format version 2: a future (or
  // stale) trace must be rejected before any chunk is trusted.
  std::vector<std::uint8_t> bytes(replay::kMagic, replay::kMagic + 4);
  replay::put_varint(bytes, replay::kFormatVersion + 1);
  try {
    ChunkReader reader(bytes);
    FAIL() << "expected ReplayError";
  } catch (const ReplayError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kVersionSkew);
    EXPECT_NE(std::string(e.what()).find("version 2"), std::string::npos);
  }
}

TEST(ReplayChunks, BadMagicRejected) {
  std::vector<std::uint8_t> bytes = {'N', 'O', 'P', 'E', 1};
  try {
    ChunkReader reader(bytes);
    FAIL() << "expected ReplayError";
  } catch (const ReplayError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kBadMagic);
  }
}

// --- randomized event-stream round trips -----------------------------------

server::SessionEvent random_event(Rng& rng, std::uint64_t id) {
  server::SessionEvent ev;
  ev.id = id;
  ev.shard = static_cast<std::uint32_t>(rng.below(16));
  ev.wire_bytes = rng.below(1 << 20);
  ev.records = rng.below(256);
  ev.retries = static_cast<std::uint32_t>(rng.below(8));
  ev.repairs = static_cast<std::uint32_t>(rng.below(4));
  ev.faults = static_cast<std::uint32_t>(rng.below(8));
  ev.completed = rng.below(8) != 0;
  return ev;
}

// Round-trips randomized event streams through the full RunRecord codec:
// encode -> decode must be the identity on every field, for many seeds.
TEST(ReplayRunRecord, RandomizedEventStreamsRoundTrip) {
  for (std::uint64_t seed : {1ULL, 42ULL, 12345ULL}) {
    Rng rng(seed);
    server::RunRecord rec;
    rec.git_rev = "testrev";
    rec.recorded_threads = 3;
    rec.scenario.seed = seed;
    rec.scenario.sessions = 500;
    rec.config.shards = 16;
    rec.report.shards.resize(16);
    std::uint64_t id = 0;
    for (int i = 0; i < 500; ++i) {
      id += 1 + rng.below(3);  // gaps model dropped arrivals
      const auto ev = random_event(rng, id);
      rec.report.events.push_back(ev);
      auto& sh = rec.report.shards[ev.shard];
      sh.events_digest = (sh.events_digest ^ ev.digest()) * 1099511628211ULL + 1;
    }
    rec.report.admitted = rec.report.events.size();
    rec.report.latency = {1.5e6, 3.0e6, 4.5e6, 6.0e6};
    rec.report.throughput_per_gcycle = 239.31498;

    const auto bytes = server::encode_run_record(rec);
    const server::RunRecord back = server::decode_run_record(bytes);
    EXPECT_EQ(back.git_rev, "testrev");
    EXPECT_EQ(back.recorded_threads, 3u);
    EXPECT_EQ(back.scenario.seed, seed);
    EXPECT_EQ(back.scenario.sessions, 500u);
    EXPECT_EQ(back.config.shards, 16u);
    ASSERT_EQ(back.report.events.size(), rec.report.events.size());
    for (std::size_t i = 0; i < rec.report.events.size(); ++i) {
      EXPECT_EQ(back.report.events[i], rec.report.events[i]) << "event " << i;
    }
    for (std::size_t s = 0; s < 16; ++s) {
      EXPECT_EQ(back.report.shards[s].events_digest,
                rec.report.shards[s].events_digest);
    }
    EXPECT_EQ(back.report.latency.p99, 4.5e6);
    EXPECT_EQ(back.report.throughput_per_gcycle, 239.31498);
  }
}

TEST(ReplayRunRecord, EncodingIsDeterministic) {
  server::RunRecord rec;
  rec.git_rev = "r";
  rec.scenario.sessions = 8;
  rec.config.shards = 2;
  rec.report.shards.resize(2);
  EXPECT_EQ(server::encode_run_record(rec), server::encode_run_record(rec));
}

TEST(ReplayRunRecord, MissingChunkIsMalformed) {
  // A structurally valid stream (header + end chunk only) is not a run
  // record; it must fail with kMalformed, not decode to an empty record.
  VectorSink sink;
  ChunkWriter writer(sink);
  writer.end();
  try {
    (void)server::decode_run_record(sink.bytes());
    FAIL() << "expected ReplayError";
  } catch (const ReplayError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kMalformed);
  }
}

TEST(ReplayRunRecord, UnknownChunkTagsAreSkipped) {
  server::RunRecord rec;
  rec.git_rev = "r";
  rec.scenario.sessions = 4;
  rec.config.shards = 1;
  rec.report.shards.resize(1);
  auto bytes = server::encode_run_record(rec);
  // Splice an unknown (future) chunk after the header: the decoder must
  // skip it and still find every required chunk.
  VectorSink sink;
  ChunkWriter writer(sink);
  writer.chunk(99, {0xAA, 0xBB});
  const auto& extra = sink.bytes();
  const std::size_t header = 5;  // magic + version varint
  std::vector<std::uint8_t> spliced;
  const auto append = [&spliced](const std::vector<std::uint8_t>& src,
                                 std::size_t from, std::size_t to) {
    for (std::size_t i = from; i < to; ++i) spliced.push_back(src[i]);
  };
  append(bytes, 0, header);
  append(extra, header, extra.size());
  append(bytes, header, bytes.size());
  const server::RunRecord back = server::decode_run_record(spliced);
  EXPECT_EQ(back.scenario.sessions, 4u);
}

TEST(ReplayRunRecord, FileRoundTrip) {
  server::RunRecord rec;
  rec.git_rev = "filetest";
  rec.scenario.sessions = 4;
  rec.config.shards = 2;
  rec.report.shards.resize(2);
  const std::string path = ::testing::TempDir() + "/roundtrip.wspr";
  ASSERT_TRUE(server::write_run_record_file(rec, path));
  const server::RunRecord back = server::read_run_record_file(path);
  EXPECT_EQ(back.git_rev, "filetest");
  std::remove(path.c_str());

  EXPECT_FALSE(server::write_run_record_file(rec, "/nonexistent-dir-xyz/x"));
  try {
    (void)server::read_run_record_file("/nonexistent-dir-xyz/x");
    FAIL() << "expected ReplayError";
  } catch (const ReplayError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kTruncated);
  }
}

TEST(ReplayCrc32Filter, MatchesOneShotCrc) {
  VectorSink sink;
  replay::Crc32Filter filter(sink);
  const std::uint8_t part1[] = {1, 2, 3};
  const std::uint8_t part2[] = {4, 5};
  filter.write(part1, sizeof part1);
  filter.write(part2, sizeof part2);
  const std::uint8_t whole[] = {1, 2, 3, 4, 5};
  EXPECT_EQ(filter.crc(), crc32(whole, sizeof whole));
  EXPECT_EQ(sink.bytes().size(), 5u);  // pass-through, unchanged
}

}  // namespace
}  // namespace wsp
