// Tier-2 replay determinism: a chaos-mode engine run recorded at one thread
// count must replay bit-identically at a different one — RunReport scalars,
// per-shard event digests and the full per-session event stream.  This is
// the thread-invariance contract (docs/server.md) enforced end-to-end
// through the wsp-replay-v1 trace, including a disk round trip, plus the
// negative control: a tampered record must be reported as a mismatch.
#include <gtest/gtest.h>

#include <cstdio>

#include "server/record.h"
#include "server_section.h"

namespace wsp {
namespace {

server::EngineConfig chaos_config(unsigned threads) {
  server::EngineConfig cfg;
  cfg.threads = threads;
  cfg.shards = 4;
  cfg.queue_capacity = 64;
  cfg.faults = bench::chaos_fault_config();
  cfg.degrade_depth = 12;
  return cfg;
}

TEST(ReplayDeterminism, RecordAtOneThreadReplayAtEight) {
  const auto scenario = bench::chaos_scenario(74, 64);
  const server::RunRecord rec = server::record_run(chaos_config(1), scenario);
  ASSERT_EQ(rec.recorded_threads, 1u);
  ASSERT_GT(rec.report.faults_injected, 0u) << "chaos plan injected nothing";
  ASSERT_EQ(rec.report.events.size(), rec.report.admitted);

  const server::ReplayResult res = server::replay_run(rec, 8);
  EXPECT_TRUE(res.ok()) << res.mismatches.size() << " mismatches, first: "
                        << (res.mismatches.empty() ? "" : res.mismatches[0]);
  EXPECT_EQ(res.report.threads, 8u);

  // Spot-check the per-session digests directly, not just via replay_run.
  ASSERT_EQ(res.report.events.size(), rec.report.events.size());
  for (std::size_t i = 0; i < rec.report.events.size(); ++i) {
    EXPECT_EQ(res.report.events[i].digest(), rec.report.events[i].digest())
        << "session event " << i;
  }
  ASSERT_EQ(res.report.shards.size(), rec.report.shards.size());
  for (std::size_t s = 0; s < rec.report.shards.size(); ++s) {
    EXPECT_EQ(res.report.shards[s].events_digest,
              rec.report.shards[s].events_digest)
        << "shard " << s;
  }
}

TEST(ReplayDeterminism, DiskRoundTripThenReplayAtDifferentThreads) {
  const auto scenario = bench::chaos_scenario(75, 48);
  const server::RunRecord rec = server::record_run(chaos_config(2), scenario);
  const std::string path = ::testing::TempDir() + "/chaos_run.wspr";
  ASSERT_TRUE(server::write_run_record_file(rec, path));
  const server::RunRecord loaded = server::read_run_record_file(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.report.events, rec.report.events);
  const server::ReplayResult res = server::replay_run(loaded, 5);
  EXPECT_TRUE(res.ok()) << (res.mismatches.empty() ? "" : res.mismatches[0]);
}

TEST(ReplayDeterminism, TamperedRecordReportsMismatch) {
  const auto scenario = bench::chaos_scenario(76, 32);
  server::RunRecord rec = server::record_run(chaos_config(1), scenario);
  ASSERT_FALSE(rec.report.events.empty());
  rec.report.events[0].wire_bytes ^= 1;  // claim a different byte total
  const server::ReplayResult res = server::replay_run(rec, 4);
  EXPECT_FALSE(res.ok());
}

}  // namespace
}  // namespace wsp
