// Tier-1 tests for the million-session data-plane primitives: the Slab
// arena (generation-counted handles over chunked storage) and the Vyukov
// bounded MPSC ring (the record scheduler's shard queue).  Concurrency
// soaks live in test_server_determinism (tier2, sanitizer builds); these
// pin the single-threaded contracts.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "support/arena.h"
#include "support/mpsc_ring.h"

namespace wsp {
namespace {

using support::MpscRing;
using support::Slab;
using support::SlabRef;

// Counts constructions/destructions so leak and double-destroy bugs in the
// slab show up as arithmetic, not as sanitizer-only findings.
struct Tracked {
  static int live;
  explicit Tracked(int v = 0) : value(v) { ++live; }
  Tracked(const Tracked& o) : value(o.value) { ++live; }
  ~Tracked() { --live; }
  int value;
};
int Tracked::live = 0;

TEST(Slab, EmplaceGetEraseRoundTrip) {
  Slab<Tracked, 8> slab;
  EXPECT_EQ(slab.live(), 0u);

  const SlabRef a = slab.emplace(41);
  const SlabRef b = slab.emplace(42);
  ASSERT_NE(slab.get(a), nullptr);
  ASSERT_NE(slab.get(b), nullptr);
  EXPECT_EQ(slab.get(a)->value, 41);
  EXPECT_EQ(slab.get(b)->value, 42);
  EXPECT_EQ(slab.live(), 2u);
  EXPECT_EQ(Tracked::live, 2);

  EXPECT_TRUE(slab.erase(a));
  EXPECT_EQ(slab.get(a), nullptr);   // stale handle
  EXPECT_FALSE(slab.erase(a));       // double erase refused
  EXPECT_EQ(slab.live(), 1u);
  EXPECT_EQ(Tracked::live, 1);
  EXPECT_EQ(slab.get(b)->value, 42);  // unaffected neighbour
}

TEST(Slab, StaleHandleNeverAliasesSlotReuse) {
  Slab<Tracked, 8> slab;
  const SlabRef a = slab.emplace(1);
  slab.erase(a);
  const SlabRef b = slab.emplace(2);  // free list reuses a's slot
  EXPECT_EQ(b.slot, a.slot);
  EXPECT_NE(b.gen, a.gen);
  EXPECT_EQ(slab.get(a), nullptr);  // old handle stays stale
  EXPECT_EQ(slab.get(b)->value, 2);
}

TEST(Slab, DefaultRefAndOutOfRangeAreRejected) {
  Slab<Tracked, 8> slab;
  EXPECT_EQ(slab.get(SlabRef{}), nullptr);
  EXPECT_FALSE(slab.erase(SlabRef{}));
  slab.emplace(1);
  EXPECT_EQ(slab.get(SlabRef{99, 1}), nullptr);
}

TEST(Slab, AddressesStableAcrossChunkGrowth) {
  using SmallSlab = Slab<Tracked, 4>;  // small chunks force several allocations
  SmallSlab slab;
  std::vector<SlabRef> refs;
  std::vector<const Tracked*> ptrs;
  for (int i = 0; i < 64; ++i) {
    refs.push_back(slab.emplace(i));
    ptrs.push_back(slab.get(refs.back()));
  }
  EXPECT_GE(slab.capacity(), 64u);
  EXPECT_EQ(slab.bytes_reserved(), slab.capacity() * SmallSlab::slot_bytes());
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(slab.get(refs[static_cast<std::size_t>(i)]),
              ptrs[static_cast<std::size_t>(i)]);
    EXPECT_EQ(ptrs[static_cast<std::size_t>(i)]->value, i);
  }
}

TEST(Slab, FreeListReusesSlotsBeforeGrowing) {
  Slab<Tracked, 8> slab;
  std::vector<SlabRef> refs;
  for (int i = 0; i < 8; ++i) refs.push_back(slab.emplace(i));
  const std::size_t cap = slab.capacity();
  for (const SlabRef& r : refs) slab.erase(r);
  for (int i = 0; i < 8; ++i) slab.emplace(100 + i);
  EXPECT_EQ(slab.capacity(), cap);  // churn must not grow the arena
  EXPECT_EQ(slab.live(), 8u);
}

TEST(Slab, ClearDestroysEverythingAndResets) {
  Slab<Tracked, 8> slab;
  for (int i = 0; i < 20; ++i) slab.emplace(i);
  EXPECT_EQ(Tracked::live, 20);
  slab.clear();
  EXPECT_EQ(Tracked::live, 0);
  EXPECT_EQ(slab.live(), 0u);
  EXPECT_EQ(slab.bytes_reserved(), 0u);
  // Usable again after clear().
  const SlabRef r = slab.emplace(7);
  EXPECT_EQ(slab.get(r)->value, 7);
  slab.clear();
}

TEST(Slab, DestructorRunsLiveDestructors) {
  {
    Slab<Tracked, 8> slab;
    slab.emplace(1);
    slab.emplace(2);
    EXPECT_EQ(Tracked::live, 2);
  }
  EXPECT_EQ(Tracked::live, 0);
}

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(MpscRing<int>(1000).capacity(), 1024u);
}

TEST(MpscRing, FifoOrderAndFullEmptyBoundaries) {
  MpscRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));  // empty
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full
  EXPECT_EQ(ring.size_approx(), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(ring.size_approx(), 0u);
}

TEST(MpscRing, RefusedPushDoesNotConsumeTheValue) {
  // The scheduler's backpressure wait retries try_push(work) as a condvar
  // predicate, so a refused push must leave the value intact.
  MpscRing<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(1)));
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(2)));
  auto held = std::make_unique<int>(3);
  EXPECT_FALSE(ring.try_push(held));
  ASSERT_NE(held, nullptr);  // still ours after the refusal
  EXPECT_EQ(*held, 3);
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(*out, 1);
  EXPECT_TRUE(ring.try_push(held));  // same value goes through now
  EXPECT_EQ(held, nullptr);
}

TEST(MpscRing, PopDropsCapturedStateImmediately) {
  MpscRing<std::shared_ptr<int>> ring(4);
  auto tracked = std::make_shared<int>(5);
  std::weak_ptr<int> weak = tracked;
  EXPECT_TRUE(ring.try_push(std::move(tracked)));
  std::shared_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  out.reset();
  // The cell must not keep a copy alive until its next overwrite.
  EXPECT_TRUE(weak.expired());
}

TEST(MpscRing, WrapsAroundManyTimes) {
  MpscRing<int> ring(4);
  int out = 0;
  for (int round = 0; round < 1000; ++round) {
    EXPECT_TRUE(ring.try_push(round));
    EXPECT_TRUE(ring.try_push(round + 1000000));
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, round);
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, round + 1000000);
  }
  EXPECT_EQ(ring.size_approx(), 0u);
}

TEST(MpscRing, HoldsMoveOnlyWork) {
  MpscRing<std::function<void()>> ring(8);
  int ran = 0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(ring.try_push([&ran] { ++ran; }));
  }
  std::function<void()> work;
  while (ring.try_pop(work)) work();
  EXPECT_EQ(ran, 3);
}

}  // namespace
}  // namespace wsp
