#include <gtest/gtest.h>

#include "crypto/rsa.h"
#include "support/random.h"

namespace wsp {
namespace {

const rsa::PrivateKey& test_key() {
  static const rsa::PrivateKey key = [] {
    Rng rng(81);
    return rsa::generate_key(512, rng);
  }();
  return key;
}

TEST(Rsa, KeyGenerationInvariants) {
  const auto& key = test_key();
  EXPECT_EQ(key.bits(), 512u);
  EXPECT_EQ(key.p * key.q, key.n);
  const Mpz phi = (key.p - Mpz(1)) * (key.q - Mpz(1));
  EXPECT_EQ((key.d * key.e).mod(phi), Mpz(1));
  EXPECT_EQ(key.crt.dp, key.d % (key.p - Mpz(1)));
}

TEST(Rsa, RawRoundTrip) {
  const auto& key = test_key();
  ModexpEngine engine{ModexpConfig{}};
  Rng rng(82);
  for (int i = 0; i < 10; ++i) {
    const Mpz m = Mpz::from_bytes_be(rng.bytes(32));
    const Mpz c = rsa::public_op(m, key.public_key(), engine);
    EXPECT_EQ(rsa::private_op(c, key, engine), m);
  }
}

TEST(Rsa, CrtModesAgree) {
  const auto& key = test_key();
  Rng rng(83);
  const Mpz c = Mpz::from_bytes_be(rng.bytes(40));
  Mpz results[3];
  int idx = 0;
  for (CrtMode mode : {CrtMode::kNone, CrtMode::kTextbook, CrtMode::kGarner}) {
    ModexpConfig cfg;
    cfg.crt = mode;
    ModexpEngine engine(cfg);
    results[idx++] = rsa::private_op(c, key, engine);
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(Rsa, Pkcs1EncryptDecrypt) {
  const auto& key = test_key();
  ModexpEngine engine{ModexpConfig{}};
  Rng rng(84);
  const std::vector<std::uint8_t> msg = {'h', 'e', 'l', 'l', 'o'};
  const auto ct = rsa::encrypt(msg, key.public_key(), engine, rng);
  EXPECT_EQ(ct.size(), 64u);
  EXPECT_EQ(rsa::decrypt(ct, key, engine), msg);
}

TEST(Rsa, PaddingIsRandomized) {
  const auto& key = test_key();
  ModexpEngine engine{ModexpConfig{}};
  Rng rng(85);
  const std::vector<std::uint8_t> msg = {1, 2, 3};
  const auto c1 = rsa::encrypt(msg, key.public_key(), engine, rng);
  const auto c2 = rsa::encrypt(msg, key.public_key(), engine, rng);
  EXPECT_NE(c1, c2);
}

TEST(Rsa, MessageTooLongRejected) {
  const auto& key = test_key();
  ModexpEngine engine{ModexpConfig{}};
  Rng rng(86);
  EXPECT_THROW(rsa::encrypt(std::vector<std::uint8_t>(60), key.public_key(),
                            engine, rng),
               std::invalid_argument);
}

TEST(Rsa, CorruptedCiphertextRejected) {
  const auto& key = test_key();
  ModexpEngine engine{ModexpConfig{}};
  Rng rng(87);
  auto ct = rsa::encrypt({9, 9, 9}, key.public_key(), engine, rng);
  ct[10] ^= 0x40;
  EXPECT_THROW(
      {
        const auto out = rsa::decrypt(ct, key, engine);
        // Extremely unlikely to still parse; if it does, it must differ.
        ASSERT_NE(out, (std::vector<std::uint8_t>{9, 9, 9}));
      },
      std::runtime_error);
}

TEST(Rsa, SignVerify) {
  const auto& key = test_key();
  ModexpEngine engine{ModexpConfig{}};
  const std::vector<std::uint8_t> msg = {'s', 'i', 'g', 'n', 'm', 'e'};
  const auto sig = rsa::sign(msg, key, engine);
  EXPECT_TRUE(rsa::verify(msg, sig, key.public_key(), engine));
  auto tampered = msg;
  tampered[0] ^= 1;
  EXPECT_FALSE(rsa::verify(tampered, sig, key.public_key(), engine));
  auto bad_sig = sig;
  bad_sig[5] ^= 1;
  EXPECT_FALSE(rsa::verify(msg, bad_sig, key.public_key(), engine));
}

TEST(Rsa, WorksUnderEveryMulAlgo) {
  const auto& key = test_key();
  Rng rng(88);
  const Mpz m = Mpz::from_bytes_be(rng.bytes(32));
  ModexpEngine ref{ModexpConfig{}};
  const Mpz expected = rsa::public_op(m, key.public_key(), ref);
  for (MulAlgo alg : {MulAlgo::kBasecaseDiv, MulAlgo::kKaratsubaDiv,
                      MulAlgo::kBarrett, MulAlgo::kMontSOS, MulAlgo::kMontCIOS}) {
    ModexpConfig cfg;
    cfg.mul = alg;
    ModexpEngine engine(cfg);
    EXPECT_EQ(rsa::public_op(m, key.public_key(), engine), expected)
        << to_string(alg);
  }
}

}  // namespace
}  // namespace wsp
