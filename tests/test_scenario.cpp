// The .wsp scenario compiler (src/scenario, docs/scenarios.md): golden
// diagnostics (stable Ennn codes + line:column), lowering correctness, and
// the legacy-equivalence contract — a one-phase program spelling out the
// flat defaults must reproduce the flat code path bit for bit.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "scenario/compile.h"
#include "server/engine.h"
#include "server_section.h"

namespace wsp {
namespace {

using scenario::Code;
using scenario::ScenarioError;

/// Compiles `source`, requiring failure; returns the caught error.
ScenarioError compile_error(const std::string& source) {
  try {
    scenario::compile(source, "test.wsp");
  } catch (const ScenarioError& e) {
    return e;
  }
  ADD_FAILURE() << "expected a ScenarioError for:\n" << source;
  return ScenarioError(scenario::Diagnostic{}, "test.wsp");
}

struct GoldenCase {
  const char* source;
  Code code;
  int line;
  int column;
};

TEST(ScenarioDiagnostics, GoldenErrorSuite) {
  // One golden case per stable error code: the code AND the line:column
  // anchor are part of the compiler's contract (docs/scenarios.md §4).
  const GoldenCase cases[] = {
      // Lexical.
      {"scenario {\n  @seed 1\n}\n", Code::kInvalidChar, 2, 3},
      {"scenario \"unterminated\n{ }\n", Code::kUnterminatedString, 1, 10},
      {"scenario {\n  load 3..5\n}\n", Code::kMalformedNumber, 2, 8},
      // Syntactic.
      {"scenario {\n  { }\n}\n", Code::kUnexpectedToken, 2, 3},
      {"scenario {\n", Code::kUnexpectedEnd, 2, 1},
      {"phase \"p\" { }\n", Code::kExpectedScenario, 1, 1},
      {"scenario { phase \"p\" { sessions 1 } } }\n", Code::kTrailingInput, 1,
       39},
      // Semantic.
      {"scenario {\n  bogus 3\n  phase \"p\" { sessions 1 }\n}\n",
       Code::kUnknownKey, 2, 3},
      {"scenario {\n  seed 1\n  seed 2\n  phase \"p\" { sessions 1 }\n}\n",
       Code::kDuplicateKey, 3, 3},
      {"scenario {\n  phase \"p\" {\n    sessions 1\n    mix { des3: 1 }\n"
       "  }\n}\n",
       Code::kUnknownCipher, 4, 11},
      {"scenario {\n  seed { }\n  phase \"p\" { sessions 1 }\n}\n",
       Code::kTypeMismatch, 2, 3},
      {"scenario {\n  phase \"p\" {\n    sessions 1\n    resume 1.5\n  }\n}\n",
       Code::kOutOfRange, 4, 12},
      {"scenario {\n  seed 9\n}\n", Code::kNoPhases, 1, 1},
      {"scenario {\n  phase \"p\" {\n    load 0.5\n  }\n}\n",
       Code::kMissingKey, 2, 3},
      {"scenario {\n  phase \"p\" {\n    sessions 1\n    mix { }\n  }\n}\n",
       Code::kEmptyMix, 4, 5},
      {"scenario {\n  phase \"p\" {\n    sessions 1\n    arrivals sideways\n"
       "  }\n}\n",
       Code::kUnknownEnum, 4, 14},
      {"scenario {\n  phase \"p\" {\n    sessions 1\n"
       "    mix { rc4: 1, rc4: 2 }\n  }\n}\n",
       Code::kDuplicateEntry, 4, 19},
  };
  for (const GoldenCase& c : cases) {
    const ScenarioError err = compile_error(c.source);
    EXPECT_EQ(err.code(), c.code) << c.source;
    EXPECT_EQ(err.diagnostic().loc.line, c.line) << c.source;
    EXPECT_EQ(err.diagnostic().loc.column, c.column) << c.source;
  }
}

TEST(ScenarioDiagnostics, RenderCarriesFileLineColumnCodeAndCaret) {
  const ScenarioError err = compile_error(
      "scenario {\n  phase \"p\" {\n    sessions 1\n    resume 1.5\n  }\n}\n");
  const std::string what = err.what();
  EXPECT_NE(what.find("test.wsp:4:12: error E205"), std::string::npos) << what;
  EXPECT_NE(what.find("resume 1.5"), std::string::npos) << what;  // excerpt
  EXPECT_NE(what.find('^'), std::string::npos) << what;           // caret
}

TEST(ScenarioCompile, LowersPhasesWithDefaultsInheritance) {
  const auto compiled = scenario::compile(
      "# comment\n"
      "scenario \"demo\" {\n"
      "  seed 99\n"
      "  record_bytes 512\n"
      "  defaults {\n"
      "    arrivals open\n"
      "    load 0.5\n"
      "    mix { aes128: 2, rc4: 1 }\n"
      "  }\n"
      "  phase \"a\" { sessions 10 }\n"
      "  phase \"b\" {\n"
      "    sessions 20, arrivals closed, users 4, think 1000\n"
      "    resume on\n"
      "    sizes { 2048: 3, 8192: 1 }\n"
      "    faults { wire_flip_rate 0.1, record_retry_budget 2 }\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(compiled.name, "demo");
  const server::TrafficScenario& sc = compiled.scenario;
  ASSERT_TRUE(sc.phased());
  ASSERT_EQ(sc.phases.size(), 2u);
  EXPECT_EQ(sc.seed, 99u);
  EXPECT_EQ(sc.record_bytes, 512u);
  EXPECT_EQ(sc.total_sessions(), 30u);

  const server::TrafficPhase& a = sc.phases[0];
  EXPECT_EQ(a.name, "a");
  EXPECT_EQ(a.sessions, 10u);
  EXPECT_EQ(a.model, server::ArrivalModel::kOpenLoop);
  EXPECT_DOUBLE_EQ(a.offered_load, 0.5);  // from defaults
  ASSERT_EQ(a.cipher_mix.size(), 2u);     // from defaults
  EXPECT_EQ(a.cipher_mix[0].cipher, ssl::Cipher::kAes128Cbc);
  EXPECT_EQ(a.cipher_mix[0].weight, 2u);
  EXPECT_EQ(a.size_mix.size(), 6u);  // built-in Fig. 8 grid
  EXPECT_FALSE(a.faults.has_value());
  EXPECT_DOUBLE_EQ(a.resume_fraction, 0.0);

  const server::TrafficPhase& b = sc.phases[1];
  EXPECT_EQ(b.model, server::ArrivalModel::kClosedLoop);
  EXPECT_EQ(b.users, 4u);
  EXPECT_DOUBLE_EQ(b.think_cycles, 1000.0);
  EXPECT_DOUBLE_EQ(b.resume_fraction, 1.0);  // `resume on`
  ASSERT_EQ(b.size_mix.size(), 2u);
  EXPECT_EQ(b.size_mix[0].bytes, 2048u);
  EXPECT_EQ(b.size_mix[0].weight, 3u);
  ASSERT_TRUE(b.faults.has_value());
  EXPECT_DOUBLE_EQ(b.faults->wire_flip_rate, 0.1);
  EXPECT_EQ(b.faults->record_retry_budget, 2u);

  // The compiler's output must always pass the engine's validator.
  EXPECT_NO_THROW(sc.validate());
}

TEST(ScenarioCompile, UnnamedPhasesAndOptionalPunctuation) {
  // Colons and commas are sugar; phases without labels get stable names.
  const auto compiled = scenario::compile(
      "scenario{phase{sessions:5}phase{sessions:7,resume:0.5}}");
  ASSERT_EQ(compiled.scenario.phases.size(), 2u);
  EXPECT_EQ(compiled.scenario.phases[0].name, "phase0");
  EXPECT_EQ(compiled.scenario.phases[1].name, "phase1");
  EXPECT_DOUBLE_EQ(compiled.scenario.phases[1].resume_fraction, 0.5);
}

TEST(ScenarioCompile, FaultsBlockReplacesInheritedOverlay) {
  const auto compiled = scenario::compile(
      "scenario {\n"
      "  defaults { faults { wire_flip_rate 0.2 } }\n"
      "  phase \"stormy\" { sessions 1 }\n"
      "  phase \"calm\" { sessions 1, faults { } }\n"
      "}\n");
  ASSERT_TRUE(compiled.scenario.phases[0].faults.has_value());
  EXPECT_DOUBLE_EQ(compiled.scenario.phases[0].faults->wire_flip_rate, 0.2);
  // An empty faults block resets to the benign default config.
  ASSERT_TRUE(compiled.scenario.phases[1].faults.has_value());
  EXPECT_DOUBLE_EQ(compiled.scenario.phases[1].faults->wire_flip_rate, 0.0);
}

// --- Legacy equivalence (the compiler's load-bearing contract) -------------

server::RunReport run_with(const server::TrafficScenario& sc,
                           unsigned threads = 2) {
  server::EngineConfig cfg;
  cfg.threads = threads;
  cfg.shards = 4;
  server::Engine engine(cfg);
  return engine.run(sc);
}

TEST(ScenarioEquivalence, OnePhaseOpenLoopMatchesFlatFig8Bitwise) {
  // The acceptance gate: the Fig. 8 grid spelled as a .wsp produces a
  // report IDENTICAL to the legacy flat path — same Rng draws, same IEEE
  // mean-service arithmetic, same everything.
  const auto compiled = scenario::compile(
      "scenario \"fig8\" {\n"
      "  seed 71\n"
      "  record_bytes 1024\n"
      "  phase \"steady\" { sessions 64, arrivals open, load 0.6 }\n"
      "}\n");
  const auto flat = bench::steady_scenario(71, 64);
  EXPECT_TRUE(bench::reports_deterministically_equal(
      run_with(compiled.scenario), run_with(flat)));
}

TEST(ScenarioEquivalence, OnePhaseClosedLoopMatchesFlatBitwise) {
  const auto compiled = scenario::compile(
      "scenario {\n"
      "  seed 72\n"
      "  record_bytes 1024\n"
      "  phase { sessions 32, arrivals closed, users 8, think 6000000 }\n"
      "}\n");
  const auto flat = bench::closed_scenario(72, 32, 8);
  EXPECT_TRUE(bench::reports_deterministically_equal(
      run_with(compiled.scenario), run_with(flat)));
}

TEST(ScenarioEquivalence, ResumeOnMatchesFlatResumeSessionsBitwise) {
  // `resume on` (fraction exactly 1.0) must hit the flat resume_sessions
  // path exactly: resumed pricing, abbreviated handshakes, no keygen, and
  // crucially NO per-arrival resume coin consuming Rng draws.
  const auto compiled = scenario::compile(
      "scenario {\n"
      "  seed 73\n"
      "  record_bytes 256\n"
      "  phase {\n"
      "    sessions 48, arrivals open, load 1.2, resume on\n"
      "    mix { rc4: 1 }\n"
      "    sizes { 256: 1, 512: 1 }\n"
      "  }\n"
      "}\n");
  server::TrafficScenario flat;
  flat.seed = 73;
  flat.sessions = 48;
  flat.model = server::ArrivalModel::kOpenLoop;
  flat.offered_load = 1.2;
  flat.resume_sessions = true;
  flat.ciphers = {ssl::Cipher::kRc4};
  flat.transaction_sizes = {256, 512};
  flat.record_bytes = 256;
  EXPECT_TRUE(bench::reports_deterministically_equal(
      run_with(compiled.scenario), run_with(flat)));
}

TEST(ScenarioEquivalence, WeightedMixEqualsDuplicatedGridEntries) {
  // A weight-2 entry must consume the Rng exactly like the same entry
  // listed twice in a flat grid: pick_weighted draws below(total weight),
  // the flat path draws below(grid size), and the cumulative walk maps the
  // same raw draw to the same cipher/size.
  const auto compiled = scenario::compile(
      "scenario {\n"
      "  seed 81\n"
      "  record_bytes 1024\n"
      "  phase {\n"
      "    sessions 40, arrivals open, load 0.7\n"
      "    mix { 3des: 2, rc4: 1 }\n"
      "    sizes { 1024: 1, 4096: 2 }\n"
      "  }\n"
      "}\n");
  server::TrafficScenario flat;
  flat.seed = 81;
  flat.sessions = 40;
  flat.model = server::ArrivalModel::kOpenLoop;
  flat.offered_load = 0.7;
  flat.ciphers = {ssl::Cipher::kTripleDesCbc, ssl::Cipher::kTripleDesCbc,
                  ssl::Cipher::kRc4};
  flat.transaction_sizes = {1024, 4096, 4096};
  EXPECT_TRUE(bench::reports_deterministically_equal(
      run_with(compiled.scenario), run_with(flat)));
}

TEST(ScenarioPrograms, MultiPhaseRunsAllPhasesAndKeepsLeakInvariant) {
  const auto compiled = scenario::compile(
      "scenario {\n"
      "  seed 91\n"
      "  phase \"calm\"  { sessions 16, load 0.4 }\n"
      "  phase \"spike\" { sessions 48, load 3.0, resume 0.75 }\n"
      "  phase \"storm\" { sessions 16, load 0.8,\n"
      "                   faults { handshake_failure_rate 0.3,\n"
      "                            handshake_retry_budget 2 } }\n"
      "}\n");
  const auto rep = run_with(compiled.scenario);
  EXPECT_EQ(rep.offered, 80u);
  EXPECT_EQ(rep.admitted, rep.completed + rep.aborted + 0u);
  EXPECT_GT(rep.faults_injected, 0u);  // the storm overlay must bite
}

TEST(ScenarioPrograms, PhaseFaultOverlayConfinedToItsPhase) {
  // Identical programs except one phase's overlay: the benign phases of
  // both runs see identical traffic, so total faults differ only by the
  // overlaid phase's contribution.
  const char* benign =
      "scenario { seed 14\n"
      "  phase \"a\" { sessions 24, load 0.5 }\n"
      "  phase \"b\" { sessions 24, load 0.5 }\n"
      "}\n";
  const char* overlaid =
      "scenario { seed 14\n"
      "  phase \"a\" { sessions 24, load 0.5 }\n"
      "  phase \"b\" { sessions 24, load 0.5,\n"
      "               faults { abort_rate 0.5 } }\n"
      "}\n";
  const auto rep_benign = run_with(scenario::compile(benign).scenario);
  const auto rep_overlaid = run_with(scenario::compile(overlaid).scenario);
  EXPECT_EQ(rep_benign.faults_injected, 0u);
  EXPECT_GT(rep_overlaid.aborted, 0u);
  // The overlay must not leak sessions either way.
  EXPECT_EQ(rep_overlaid.admitted,
            rep_overlaid.completed + rep_overlaid.aborted);
}

TEST(ScenarioCompile, CompileFileErrorsNameTheFile) {
  EXPECT_THROW(scenario::compile_file("/nonexistent/nope.wsp"),
               std::runtime_error);
}

}  // namespace
}  // namespace wsp
