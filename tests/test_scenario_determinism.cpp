// Tier-2 determinism sweep for compiled .wsp traffic programs
// (docs/scenarios.md §5): the full deterministic RunReport — counters,
// latencies, per-shard event digests — must be bit-identical for any
// (threads, batch_lanes) combination, and a run recorded at one thread
// count must replay bit-exactly at another with the scenario source intact.
#include <gtest/gtest.h>

#include "scenario/compile.h"
#include "server/engine.h"
#include "server/record.h"
#include "server_section.h"

namespace wsp {
namespace {

// Exercises every program feature at once: defaults inheritance, an
// overload spike of resumed sessions, a closed-loop population, weighted
// mixes and a fault overlay — CBC-heavy so batch_lanes > 1 actually engages
// the multi-buffer plane.
const char* kSweepWsp =
    "scenario \"sweep\" {\n"
    "  seed 4242\n"
    "  record_bytes 512\n"
    "  defaults { arrivals open, mix { aes128: 2, 3des: 1 } }\n"
    "  phase \"calm\"  { sessions 24, load 0.5, sizes { 4096: 1 } }\n"
    "  phase \"spike\" { sessions 64, load 3.0, resume 0.75,\n"
    "                   sizes { 1024: 2, 2048: 1 } }\n"
    "  phase \"pool\"  { sessions 16, arrivals closed, users 4,\n"
    "                   think 20000, sizes { 8192: 1 } }\n"
    "  phase \"storm\" { sessions 24, load 0.8, resume 0.5,\n"
    "                   sizes { 4096: 1, 8192: 1 },\n"
    "                   faults { wire_flip_rate 0.05,\n"
    "                            handshake_failure_rate 0.1,\n"
    "                            record_retry_budget 2,\n"
    "                            handshake_retry_budget 2 } }\n"
    "}\n";

server::RunReport run_with(const server::TrafficScenario& sc, unsigned threads,
                           unsigned lanes) {
  server::EngineConfig cfg;
  cfg.threads = threads;
  cfg.shards = 4;
  cfg.batch_lanes = lanes;
  server::Engine engine(cfg);
  return engine.run(sc);
}

TEST(ScenarioDeterminism, ReportBitIdenticalAcrossThreadsAndLanes) {
  const auto compiled = scenario::compile(kSweepWsp, "<sweep>");
  const auto reference = run_with(compiled.scenario, 1, 1);
  EXPECT_EQ(reference.admitted, reference.completed + reference.aborted);
  EXPECT_GT(reference.faults_injected, 0u);
  for (unsigned threads : {1u, 2u, 8u}) {
    for (unsigned lanes : {1u, 8u}) {
      if (threads == 1 && lanes == 1) continue;
      const auto rep = run_with(compiled.scenario, threads, lanes);
      EXPECT_TRUE(bench::reports_deterministically_equal(reference, rep))
          << "threads=" << threads << " lanes=" << lanes;
    }
  }
}

TEST(ScenarioDeterminism, RecordReplayRoundTripWithEmbeddedSource) {
  const auto compiled = scenario::compile(kSweepWsp, "<sweep>");
  server::EngineConfig cfg;
  cfg.threads = 2;
  cfg.shards = 4;
  const server::RunRecord rec =
      server::record_run(cfg, compiled.scenario, compiled.source);

  // The codec round-trips the program and the source text bit-exactly.
  const auto bytes = server::encode_run_record(rec);
  const server::RunRecord back = server::decode_run_record(bytes);
  EXPECT_EQ(back.scenario_source, compiled.source);
  ASSERT_EQ(back.scenario.phases.size(), compiled.scenario.phases.size());
  for (std::size_t i = 0; i < back.scenario.phases.size(); ++i) {
    EXPECT_EQ(back.scenario.phases[i].name, compiled.scenario.phases[i].name);
    EXPECT_EQ(back.scenario.phases[i].sessions,
              compiled.scenario.phases[i].sessions);
  }

  // Replay the decoded record at different thread counts: bit-identical.
  for (unsigned threads : {1u, 8u}) {
    const server::ReplayResult result = server::replay_run(back, threads);
    EXPECT_TRUE(result.ok()) << "threads=" << threads << ": "
                             << (result.mismatches.empty()
                                     ? ""
                                     : result.mismatches.front());
  }
}

}  // namespace
}  // namespace wsp
