// Call-graph construction from profiler data and global custom-instruction
// selection over measured A-D curves.
#include <gtest/gtest.h>

#include "kernels/modexp_kernel.h"
#include "mp/prime.h"
#include "select/select.h"

namespace wsp {
namespace {

using select::CallGraph;
using select::CgNode;
using tie::ADCurve;
using tie::ADPoint;

CallGraph synthetic_graph() {
  // root calls mpn_add_n twice and mpn_addmul_1 once per invocation
  // (the paper's Fig. 5 example shape).
  CallGraph g;
  g.add(CgNode{"root", 10.0, {{"mpn_add_n", 2.0}, {"mpn_addmul_1", 1.0}}});
  g.add(CgNode{"mpn_add_n", 202.0, {}});
  g.add(CgNode{"mpn_addmul_1", 650.0, {}});
  return g;
}

std::map<std::string, ADCurve> synthetic_curves() {
  std::map<std::string, ADCurve> curves;
  ADCurve add;
  add.add({0, 202, {}});
  add.add({0, 110, {"ur_load", "ur_store", "add_2"}});
  add.add({0, 66, {"ur_load", "ur_store", "add_4"}});
  add.add({0, 44, {"ur_load", "ur_store", "add_8"}});
  add.add({0, 36, {"ur_load", "ur_store", "add_16"}});
  curves["mpn_add_n"] = add;
  // As in the paper's Fig. 6, the addmul curve's points also use adder
  // resources, so combining the two curves shares/dominates adders.
  ADCurve mul;
  mul.add({0, 650, {}});
  mul.add({0, 420, {"ur_load", "ur_store", "mac_1", "add_2"}});
  mul.add({0, 260, {"ur_load", "ur_store", "mac_2", "add_4"}});
  mul.add({0, 180, {"ur_load", "ur_store", "mac_4", "add_8"}});
  curves["mpn_addmul_1"] = mul;
  return curves;
}

TEST(Select, UnlimitedBudgetPicksFastestPoint) {
  const auto catalog = tie::default_catalog();
  const auto result = select::select_instructions(
      synthetic_graph(), "root", synthetic_curves(), catalog, 1e12);
  // Fastest: add_16 + mac_4 => 10 + 2*36 + 180 = 262.
  EXPECT_DOUBLE_EQ(result.chosen.cycles, 262.0);
  EXPECT_TRUE(result.chosen.instrs.count("add_16"));
  EXPECT_TRUE(result.chosen.instrs.count("mac_4"));
}

TEST(Select, ZeroBudgetPicksBasePoint) {
  const auto catalog = tie::default_catalog();
  const auto result = select::select_instructions(
      synthetic_graph(), "root", synthetic_curves(), catalog, 0.0);
  EXPECT_TRUE(result.chosen.instrs.empty());
  EXPECT_DOUBLE_EQ(result.chosen.cycles, 10.0 + 2 * 202.0 + 650.0);
}

TEST(Select, TightBudgetPrefersHighestValueUnit) {
  const auto catalog = tie::default_catalog();
  // Budget for the shared UR transfers plus one mid-size unit.
  const double budget =
      catalog.set_area({"ur_load", "ur_store", "mac_2"});
  const auto result = select::select_instructions(
      synthetic_graph(), "root", synthetic_curves(), catalog, budget);
  EXPECT_LE(result.chosen.area, budget);
  EXPECT_LT(result.chosen.cycles, 10.0 + 2 * 202.0 + 650.0);
}

TEST(Select, RootCurveIsParetoClean) {
  const auto catalog = tie::default_catalog();
  const auto result = select::select_instructions(
      synthetic_graph(), "root", synthetic_curves(), catalog, 1e12);
  const auto& pts = result.root_curve.points();
  for (const auto& p : pts) {
    for (const auto& q : pts) {
      if (&p == &q) continue;
      const bool dominated = q.area <= p.area && q.cycles <= p.cycles &&
                             (q.area < p.area || q.cycles < p.cycles);
      EXPECT_FALSE(dominated);
    }
  }
}

TEST(Select, CombineStatsShowReduction) {
  const auto catalog = tie::default_catalog();
  const auto result = select::select_instructions(
      synthetic_graph(), "root", synthetic_curves(), catalog, 1e12);
  const auto& stats = result.combine_stats.at("root");
  EXPECT_EQ(stats.cartesian_points, 20u);  // 5 x 4
  EXPECT_LT(stats.reduced_points, stats.cartesian_points);
}

TEST(CallGraph, FromProfilerBuildsWeightedEdges) {
  // Profile a real Montgomery multiplication and inspect the graph
  // (the paper's Fig. 4 flow).
  kernels::Machine machine = kernels::make_modexp_machine();
  kernels::IssModexp mx(machine);
  Rng rng(421);
  Mpz mod = random_bits(128, rng);
  if (mod.is_even()) mod = mod + Mpz(1);
  machine.cpu().reset_stats();
  mx.mont_mul_once(Mpz(999), Mpz(888), mod);
  const auto graph =
      CallGraph::from_profiler(machine.cpu().profiler(), "mont_mul");
  ASSERT_TRUE(graph.has("mont_mul"));
  const auto& node = graph.node("mont_mul");
  double addmul_calls = 0;
  for (const auto& [child, calls] : node.children) {
    if (child == "mpn_addmul_1") addmul_calls = calls;
  }
  EXPECT_DOUBLE_EQ(addmul_calls, 8.0);  // 2 per limb, 4 limbs
  EXPECT_GT(node.local_cycles, 0.0);
  const std::string rendered = graph.format("mont_mul");
  EXPECT_NE(rendered.find("mpn_addmul_1"), std::string::npos);
}

TEST(CallGraph, LeavesReachableFromRoot) {
  const auto g = synthetic_graph();
  const auto leaves = g.leaves("root");
  EXPECT_EQ(leaves.size(), 2u);
}

TEST(CallGraph, UnknownRootThrows) {
  const auto g = synthetic_graph();
  EXPECT_THROW(g.node("ghost"), std::out_of_range);
}

}  // namespace
}  // namespace wsp
