// Tier-1 tests for the secure-session server: the per-connection lifecycle
// state machine (driven by the real handshake/record code), the sharded
// session table, the bounded scheduler, and an engine smoke run.
#include <gtest/gtest.h>

#include <memory>

#include "server/engine.h"
#include "server/session_table.h"

namespace wsp {
namespace {

using server::Session;
using server::SessionConfig;
using server::SessionState;

// One shared small server key: generation dominates the test's cost.
const rsa::PrivateKey& server_key() {
  static const rsa::PrivateKey key = [] {
    Rng rng(601);
    return rsa::generate_key(512, rng);
  }();
  return key;
}

SessionConfig small_session(std::uint64_t id, ssl::Cipher cipher,
                            std::size_t bytes) {
  SessionConfig cfg;
  cfg.id = id;
  cfg.cipher = cipher;
  cfg.transaction_bytes = bytes;
  cfg.record_bytes = 256;
  cfg.seed = 0xABCD0000 + id;
  return cfg;
}

void establish(Session& s) {
  ModexpEngine client{ModexpConfig{}}, server{ModexpConfig{}};
  s.handshake(server_key(), client, server);
}

TEST(ServerSession, LifecycleHappyPath) {
  Session s(small_session(1, ssl::Cipher::kAes128Cbc, 600));
  EXPECT_EQ(s.state(), SessionState::kPending);
  EXPECT_EQ(s.wire_bytes(), 0u);

  establish(s);
  EXPECT_EQ(s.state(), SessionState::kEstablished);
  EXPECT_GT(s.handshake_bytes(), 100u);
  EXPECT_FALSE(s.finished());

  // 600 bytes in 256-byte records: 3 records, the last short.
  std::size_t moved = s.pump(100);
  EXPECT_TRUE(s.finished());
  EXPECT_EQ(s.records(), 3u);
  EXPECT_GT(moved, 600u);  // MAC + padding overhead on the wire
  EXPECT_EQ(s.wire_bytes(), s.handshake_bytes() + moved);

  s.teardown();
  EXPECT_EQ(s.state(), SessionState::kClosed);
  s.teardown();  // idempotent
  EXPECT_EQ(s.state(), SessionState::kClosed);
}

TEST(ServerSession, PumpIsBatchedAndResumable) {
  Session s(small_session(2, ssl::Cipher::kRc4, 1000));
  establish(s);
  EXPECT_GT(s.pump(2), 0u);  // 2 of 4 records
  EXPECT_FALSE(s.finished());
  EXPECT_EQ(s.records(), 2u);
  s.pump(2);
  EXPECT_TRUE(s.finished());
  EXPECT_EQ(s.records(), 4u);
  EXPECT_EQ(s.pump(4), 0u);  // nothing left: allowed, moves no bytes
}

TEST(ServerSession, ZeroByteTransactionFinishesAtHandshake) {
  Session s(small_session(3, ssl::Cipher::kRc4, 0));
  establish(s);
  EXPECT_TRUE(s.finished());
  EXPECT_EQ(s.pump(8), 0u);
  EXPECT_EQ(s.records(), 0u);
}

TEST(ServerSession, StateMachineRejectsMisuse) {
  Session s(small_session(4, ssl::Cipher::kTripleDesCbc, 512));
  // Records and rekeys need keys.
  EXPECT_THROW(s.pump(1), std::logic_error);
  EXPECT_THROW(s.rekey(), std::logic_error);

  establish(s);
  // Double handshake is a protocol violation.
  ModexpEngine ce{ModexpConfig{}}, se{ModexpConfig{}};
  EXPECT_THROW(s.handshake(server_key(), ce, se), std::logic_error);
}

TEST(ServerSession, RekeyContinuesStreamAndIsRejectedAfterTeardown) {
  Session s(small_session(5, ssl::Cipher::kAes128Cbc, 1024));
  establish(s);
  s.pump(1);
  const auto before = s.wire_bytes();
  s.rekey();
  EXPECT_EQ(s.rekeys(), 1u);
  EXPECT_GT(s.wire_bytes(), before);  // rekey nonces hit the wire
  s.pump(100);                        // stream continues under new keys
  EXPECT_TRUE(s.finished());

  s.teardown();
  // A torn-down connection must never be re-keyed back to life.
  EXPECT_THROW(s.rekey(), std::logic_error);
  EXPECT_THROW(s.pump(1), std::logic_error);
  ModexpEngine ce{ModexpConfig{}}, se{ModexpConfig{}};
  EXPECT_THROW(s.handshake(server_key(), ce, se), std::logic_error);
}

TEST(ServerSession, ByteTotalsAreSeedDeterministic) {
  auto run = [] {
    Session s(small_session(6, ssl::Cipher::kTripleDesCbc, 900));
    establish(s);
    s.pump(100);
    s.teardown();
    return s.wire_bytes();
  };
  EXPECT_EQ(run(), run());
}

TEST(ServerTable, InsertFindEraseAcrossShards) {
  server::SessionTable table(4);
  EXPECT_EQ(table.shard_count(), 4u);
  for (std::uint64_t id = 0; id < 12; ++id) {
    table.insert(std::make_unique<Session>(
        small_session(id, ssl::Cipher::kRc4, 64)));
    EXPECT_EQ(table.shard_of(id), id % 4);
  }
  EXPECT_EQ(table.size(), 12u);
  EXPECT_EQ(table.peak_size(), 12u);

  ASSERT_NE(table.find(7), nullptr);
  EXPECT_EQ(table.find(7)->id(), 7u);
  EXPECT_EQ(table.find(99), nullptr);

  EXPECT_TRUE(table.erase(7));
  EXPECT_FALSE(table.erase(7));
  EXPECT_EQ(table.find(7), nullptr);
  EXPECT_EQ(table.size(), 11u);
  EXPECT_EQ(table.peak_size(), 12u);  // high-water mark sticks

  EXPECT_THROW(table.insert(std::make_unique<Session>(
                   small_session(3, ssl::Cipher::kRc4, 64))),
               std::logic_error);
}

TEST(ServerScheduler, ExecutesFifoPerShardWithBoundedQueue) {
  ThreadPool pool(2);
  server::RecordScheduler sched(pool, 2, /*capacity=*/4, /*batch=*/3);
  std::vector<int> order;  // only shard 0 writes: FIFO check needs no lock
  for (int i = 0; i < 20; ++i) {
    sched.push(0, [i, &order] { order.push_back(i); });
  }
  sched.drain();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  const auto counters = sched.counters(0);
  EXPECT_EQ(counters.enqueued, 20u);
  EXPECT_EQ(counters.executed, 20u);
  EXPECT_LE(counters.peak_depth, 4u);  // bounded despite 20 pushes
  EXPECT_GE(counters.batches, 20u / 3u);
}

TEST(ServerEngine, SmokeRunAccountsEverySession) {
  server::EngineConfig cfg;
  cfg.threads = 1;
  cfg.shards = 2;
  server::TrafficScenario scenario;
  scenario.seed = 9;
  scenario.sessions = 10;
  scenario.offered_load = 0.8;
  scenario.ciphers = {ssl::Cipher::kRc4, ssl::Cipher::kAes128Cbc};
  scenario.transaction_sizes = {512, 1024};
  scenario.record_bytes = 512;

  server::Engine engine(cfg);
  const auto rep = engine.run(scenario);
  EXPECT_EQ(rep.offered, 10u);
  EXPECT_EQ(rep.admitted + rep.dropped, rep.offered);
  EXPECT_EQ(rep.completed, rep.admitted);  // every admitted session executes
  EXPECT_GT(rep.completed, 0u);
  EXPECT_GT(rep.wire_bytes, rep.completed * 512);
  EXPECT_GT(rep.records, 0u);
  EXPECT_GT(rep.latency.p50, 0.0);
  EXPECT_GE(rep.latency.p99, rep.latency.p50);
  EXPECT_GE(rep.latency.max, rep.latency.p99);
  EXPECT_GT(rep.makespan_cycles, 0.0);
  EXPECT_GT(rep.throughput_per_gcycle, 0.0);
  EXPECT_GT(rep.equivalent_speedup, 1.0);  // optimized platform is faster
  EXPECT_GT(rep.peak_sessions, 0u);
  ASSERT_EQ(rep.shards.size(), 2u);
  std::uint64_t shard_admitted = 0, shard_bytes = 0;
  for (const auto& s : rep.shards) {
    shard_admitted += s.admitted;
    shard_bytes += s.wire_bytes;
  }
  EXPECT_EQ(shard_admitted, rep.admitted);
  EXPECT_EQ(shard_bytes, rep.wire_bytes);
}

TEST(ServerEngine, CalibratedCostsOrdering) {
  const auto base = server::calibrated_costs(server::Pricing::kBase);
  const auto opt = server::calibrated_costs(server::Pricing::kOptimized);
  EXPECT_GT(base.rsa_private_cycles, opt.rsa_private_cycles);
  EXPECT_GT(base.symmetric_cycles_per_byte, opt.symmetric_cycles_per_byte);
  // The unaccelerated misc share is identical by construction.
  EXPECT_EQ(base.hash_cycles_per_byte, opt.hash_cycles_per_byte);
  EXPECT_EQ(base.handshake_misc_cycles, opt.handshake_misc_cycles);
}

}  // namespace
}  // namespace wsp
