// Tier-1 tests for the secure-session server: the per-connection lifecycle
// state machine (driven by the real handshake/record code), the sharded
// session table, the bounded scheduler, and an engine smoke run.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "server/engine.h"
#include "server/session_table.h"

namespace wsp {
namespace {

using server::Session;
using server::SessionConfig;
using server::SessionState;

// One shared small server key: generation dominates the test's cost.
const rsa::PrivateKey& server_key() {
  static const rsa::PrivateKey key = [] {
    Rng rng(601);
    return rsa::generate_key(512, rng);
  }();
  return key;
}

SessionConfig small_session(std::uint64_t id, ssl::Cipher cipher,
                            std::size_t bytes) {
  SessionConfig cfg;
  cfg.id = id;
  cfg.cipher = cipher;
  cfg.transaction_bytes = bytes;
  cfg.record_bytes = 256;
  cfg.seed = 0xABCD0000 + id;
  return cfg;
}

void establish(Session& s) {
  ModexpEngine client{ModexpConfig{}}, server{ModexpConfig{}};
  s.handshake(server_key(), client, server);
}

TEST(ServerSession, LifecycleHappyPath) {
  Session s(small_session(1, ssl::Cipher::kAes128Cbc, 600));
  EXPECT_EQ(s.state(), SessionState::kPending);
  EXPECT_EQ(s.wire_bytes(), 0u);

  establish(s);
  EXPECT_EQ(s.state(), SessionState::kEstablished);
  EXPECT_GT(s.handshake_bytes(), 100u);
  EXPECT_FALSE(s.finished());

  // 600 bytes in 256-byte records: 3 records, the last short.
  std::size_t moved = s.pump(100);
  EXPECT_TRUE(s.finished());
  EXPECT_EQ(s.records(), 3u);
  EXPECT_GT(moved, 600u);  // MAC + padding overhead on the wire
  EXPECT_EQ(s.wire_bytes(), s.handshake_bytes() + moved);

  s.teardown();
  EXPECT_EQ(s.state(), SessionState::kClosed);
  s.teardown();  // idempotent
  EXPECT_EQ(s.state(), SessionState::kClosed);
}

TEST(ServerSession, PumpIsBatchedAndResumable) {
  Session s(small_session(2, ssl::Cipher::kRc4, 1000));
  establish(s);
  EXPECT_GT(s.pump(2), 0u);  // 2 of 4 records
  EXPECT_FALSE(s.finished());
  EXPECT_EQ(s.records(), 2u);
  s.pump(2);
  EXPECT_TRUE(s.finished());
  EXPECT_EQ(s.records(), 4u);
  EXPECT_EQ(s.pump(4), 0u);  // nothing left: allowed, moves no bytes
}

TEST(ServerSession, ZeroByteTransactionFinishesAtHandshake) {
  Session s(small_session(3, ssl::Cipher::kRc4, 0));
  establish(s);
  EXPECT_TRUE(s.finished());
  EXPECT_EQ(s.pump(8), 0u);
  EXPECT_EQ(s.records(), 0u);
}

TEST(ServerSession, StateMachineRejectsMisuse) {
  Session s(small_session(4, ssl::Cipher::kTripleDesCbc, 512));
  // Records and rekeys need keys.
  EXPECT_THROW(s.pump(1), std::logic_error);
  EXPECT_THROW(s.rekey(), std::logic_error);

  establish(s);
  // Double handshake is a protocol violation.
  ModexpEngine ce{ModexpConfig{}}, se{ModexpConfig{}};
  EXPECT_THROW(s.handshake(server_key(), ce, se), std::logic_error);
}

TEST(ServerSession, RekeyContinuesStreamAndIsRejectedAfterTeardown) {
  Session s(small_session(5, ssl::Cipher::kAes128Cbc, 1024));
  establish(s);
  s.pump(1);
  const auto before = s.wire_bytes();
  s.rekey();
  EXPECT_EQ(s.rekeys(), 1u);
  EXPECT_GT(s.wire_bytes(), before);  // rekey nonces hit the wire
  s.pump(100);                        // stream continues under new keys
  EXPECT_TRUE(s.finished());

  s.teardown();
  // A torn-down connection must never be re-keyed back to life.
  EXPECT_THROW(s.rekey(), std::logic_error);
  EXPECT_THROW(s.pump(1), std::logic_error);
  ModexpEngine ce{ModexpConfig{}}, se{ModexpConfig{}};
  EXPECT_THROW(s.handshake(server_key(), ce, se), std::logic_error);
}

TEST(ServerSession, ByteTotalsAreSeedDeterministic) {
  auto run = [] {
    Session s(small_session(6, ssl::Cipher::kTripleDesCbc, 900));
    establish(s);
    s.pump(100);
    s.teardown();
    return s.wire_bytes();
  };
  EXPECT_EQ(run(), run());
}

TEST(ServerTable, InsertFindEraseAcrossShards) {
  server::SessionTable table(4);
  EXPECT_EQ(table.shard_count(), 4u);
  for (std::uint64_t id = 0; id < 12; ++id) {
    const auto ins = table.insert(small_session(id, ssl::Cipher::kRc4, 64));
    ASSERT_NE(ins.session, nullptr);
    EXPECT_EQ(ins.session->id(), id);
    EXPECT_EQ(ins.handle.id, id);
    EXPECT_EQ(table.shard_of(id), id % 4);
  }
  EXPECT_EQ(table.size(), 12u);
  EXPECT_EQ(table.peak_size(), 12u);

  ASSERT_NE(table.find(7), nullptr);
  EXPECT_EQ(table.find(7)->id(), 7u);
  EXPECT_EQ(table.find(99), nullptr);

  EXPECT_TRUE(table.erase(7));
  EXPECT_FALSE(table.erase(7));
  EXPECT_EQ(table.find(7), nullptr);
  EXPECT_EQ(table.size(), 11u);
  EXPECT_EQ(table.peak_size(), 12u);  // high-water mark sticks

  EXPECT_THROW(table.insert(small_session(3, ssl::Cipher::kRc4, 64)),
               std::logic_error);
}

TEST(ServerTable, HandlesGoStaleOnEraseAndSlotReuse) {
  server::SessionTable table(2);
  const auto a = table.insert(small_session(10, ssl::Cipher::kRc4, 64));
  EXPECT_EQ(table.get(a.handle), a.session);

  EXPECT_TRUE(table.erase(a.handle));
  EXPECT_EQ(table.get(a.handle), nullptr);   // stale, not dangling
  EXPECT_FALSE(table.erase(a.handle));       // double-erase refused
  EXPECT_EQ(table.size(), 0u);

  // A new session reuses the freed slot (same shard: 12 % 2 == 10 % 2);
  // the old handle's generation no longer matches, so it stays stale
  // instead of aliasing the new tenant.
  const auto b = table.insert(small_session(12, ssl::Cipher::kRc4, 64));
  EXPECT_EQ(table.get(a.handle), nullptr);
  ASSERT_NE(table.get(b.handle), nullptr);
  EXPECT_EQ(table.get(b.handle)->id(), 12u);
}

TEST(ServerTable, ChurnKeepsIndexAndAccountingExact) {
  // Insert/erase waves across slot reuse: the flat index's backward-shift
  // deletion and the slab free list must agree with find()/size() exactly.
  server::SessionTable table(3);
  std::size_t live = 0;
  for (std::uint64_t wave = 0; wave < 4; ++wave) {
    for (std::uint64_t i = 0; i < 30; ++i) {
      table.insert(small_session(wave * 1000 + i, ssl::Cipher::kRc4, 0));
      ++live;
    }
    for (std::uint64_t i = 0; i < 30; i += 2) {
      EXPECT_TRUE(table.erase(wave * 1000 + i));
      --live;
    }
    EXPECT_EQ(table.size(), live);
    for (std::uint64_t i = 0; i < 30; ++i) {
      Session* s = table.find(wave * 1000 + i);
      if (i % 2 == 0) {
        EXPECT_EQ(s, nullptr);
      } else {
        ASSERT_NE(s, nullptr);
        EXPECT_EQ(s->id(), wave * 1000 + i);
      }
    }
  }
  // Each wave nets +15 live; the peak lands in the last wave's insert
  // burst: 45 survivors + 30 new.
  EXPECT_EQ(table.peak_size(), 75u);
  EXPECT_GT(table.bytes_reserved(), 0u);
  EXPECT_GT(server::SessionTable::bytes_per_session(), sizeof(Session));
}

TEST(ServerScheduler, ExecutesFifoPerShardWithBoundedQueue) {
  ThreadPool pool(2);
  server::RecordScheduler sched(pool, 2, /*capacity=*/4, /*batch=*/3);
  std::vector<int> order;  // only shard 0 writes: FIFO check needs no lock
  for (int i = 0; i < 20; ++i) {
    sched.push(0, [i, &order] { order.push_back(i); });
  }
  sched.drain();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  const auto counters = sched.counters(0);
  EXPECT_EQ(counters.enqueued, 20u);
  EXPECT_EQ(counters.executed, 20u);
  EXPECT_LE(counters.peak_depth, 4u);  // bounded despite 20 pushes
  EXPECT_GE(counters.batches, 20u / 3u);
}

TEST(ServerScheduler, ShardIndexIsBoundsChecked) {
  ThreadPool pool(1);
  server::RecordScheduler sched(pool, 2, /*capacity=*/4);
  EXPECT_THROW(sched.push(2, [] {}), std::out_of_range);
  EXPECT_THROW(sched.push(7, [] {}), std::out_of_range);
  EXPECT_THROW(sched.counters(2), std::out_of_range);
  // Valid indices still work after the rejected calls.
  sched.push(1, [] {});
  sched.drain();
  EXPECT_EQ(sched.counters(1).executed, 1u);
  EXPECT_EQ(sched.counters(0).enqueued, 0u);
}

TEST(ServerScheduler, ReentrantPushFromPumpSpillsInsteadOfDeadlocking) {
  // Regression: a work item pushing into its own FULL shard used to block
  // on the backpressure condvar from the pump thread — and the pump is the
  // only thing that frees space, so the shard deadlocked.  Re-entrant
  // pushes must spill and complete instead.
  ThreadPool pool(1);
  server::RecordScheduler sched(pool, 1, /*capacity=*/2, /*batch=*/1);
  std::atomic<int> ran{0};
  sched.push(0, [&sched, &ran] {
    // 8 pushes into a ring of 2 from inside the pump: guaranteed overflow.
    for (int i = 0; i < 8; ++i) {
      sched.push(0, [&ran] { ran.fetch_add(1); });
    }
    ran.fetch_add(1);
  });
  sched.drain();
  EXPECT_EQ(ran.load(), 9);
  const auto counters = sched.counters(0);
  EXPECT_EQ(counters.enqueued, 9u);
  EXPECT_EQ(counters.executed, 9u);
  EXPECT_GT(counters.overflow_spills, 0u);
  EXPECT_EQ(counters.failed, 0u);
}

TEST(ServerSession, ResumeSkipsKeyExchangeAndStreamsRecords) {
  Session s(small_session(21, ssl::Cipher::kAes128Cbc, 600));
  s.resume();
  EXPECT_EQ(s.state(), SessionState::kEstablished);
  EXPECT_EQ(s.handshake_bytes(), Session::kResumedHandshakeBytes);

  const std::size_t moved = s.pump(100);
  EXPECT_TRUE(s.finished());
  EXPECT_EQ(s.records(), 3u);
  EXPECT_GT(moved, 600u);  // MAC + padding overhead on the wire
  EXPECT_EQ(s.wire_bytes(), s.handshake_bytes() + moved);

  // Rekey works from the resumed master secret, and the state machine is
  // the same one: double-resume and resume-after-teardown are rejected.
  s.rekey();
  EXPECT_EQ(s.rekeys(), 1u);
  EXPECT_THROW(s.resume(), std::logic_error);
  s.teardown();
  EXPECT_THROW(s.resume(), std::logic_error);
}

TEST(ServerSession, ResumedByteTotalsAreSeedDeterministic) {
  auto run = [] {
    Session s(small_session(22, ssl::Cipher::kRc4, 900));
    s.resume();
    s.pump(100);
    s.teardown();
    return s.wire_bytes();
  };
  EXPECT_EQ(run(), run());
}

TEST(ServerEngine, SmokeRunAccountsEverySession) {
  server::EngineConfig cfg;
  cfg.threads = 1;
  cfg.shards = 2;
  server::TrafficScenario scenario;
  scenario.seed = 9;
  scenario.sessions = 10;
  scenario.offered_load = 0.8;
  scenario.ciphers = {ssl::Cipher::kRc4, ssl::Cipher::kAes128Cbc};
  scenario.transaction_sizes = {512, 1024};
  scenario.record_bytes = 512;

  server::Engine engine(cfg);
  const auto rep = engine.run(scenario);
  EXPECT_EQ(rep.offered, 10u);
  EXPECT_EQ(rep.admitted + rep.dropped, rep.offered);
  EXPECT_EQ(rep.completed, rep.admitted);  // every admitted session executes
  EXPECT_GT(rep.completed, 0u);
  EXPECT_GT(rep.wire_bytes, rep.completed * 512);
  EXPECT_GT(rep.records, 0u);
  EXPECT_GT(rep.latency.p50, 0.0);
  EXPECT_GE(rep.latency.p99, rep.latency.p50);
  EXPECT_GE(rep.latency.max, rep.latency.p99);
  EXPECT_GT(rep.makespan_cycles, 0.0);
  EXPECT_GT(rep.throughput_per_gcycle, 0.0);
  EXPECT_GT(rep.equivalent_speedup, 1.0);  // optimized platform is faster
  EXPECT_GT(rep.peak_sessions, 0u);
  ASSERT_EQ(rep.shards.size(), 2u);
  std::uint64_t shard_admitted = 0, shard_bytes = 0;
  for (const auto& s : rep.shards) {
    shard_admitted += s.admitted;
    shard_bytes += s.wire_bytes;
  }
  EXPECT_EQ(shard_admitted, rep.admitted);
  EXPECT_EQ(shard_bytes, rep.wire_bytes);
}

TEST(ServerEngine, ResumeModeCompletesAndReportsMemory) {
  server::EngineConfig cfg;
  cfg.threads = 1;
  cfg.shards = 2;
  server::TrafficScenario scenario;
  scenario.seed = 11;
  scenario.sessions = 40;
  scenario.offered_load = 0.8;
  scenario.ciphers = {ssl::Cipher::kRc4};
  scenario.transaction_sizes = {256, 512};
  scenario.record_bytes = 256;
  scenario.resume_sessions = true;

  server::Engine engine(cfg);
  const auto rep = engine.run(scenario);
  EXPECT_EQ(rep.offered, 40u);
  EXPECT_EQ(rep.completed + rep.aborted + rep.dropped, rep.offered);
  EXPECT_GT(rep.completed, 0u);
  EXPECT_GT(rep.throughput_per_gcycle, 0.0);
  EXPECT_EQ(rep.memory_per_session, server::SessionTable::bytes_per_session());
  // Resumed sessions skip both RSA operations, so their platform-equivalent
  // speedup reflects record-layer acceleration only — well under the full
  // handshake's, but still > 1.
  EXPECT_GT(rep.equivalent_speedup, 1.0);
}

TEST(ServerEngine, AutoShardCountScalesWithHardware) {
  server::EngineConfig cfg;  // shards defaults to 0 = auto
  server::Engine engine(cfg);
  EXPECT_GE(engine.config().shards, 1u);
  EXPECT_LE(engine.config().shards, 64u);
}

TEST(ServerEngine, CalibratedCostsOrdering) {
  const auto base = server::calibrated_costs(server::Pricing::kBase);
  const auto opt = server::calibrated_costs(server::Pricing::kOptimized);
  EXPECT_GT(base.rsa_private_cycles, opt.rsa_private_cycles);
  EXPECT_GT(base.symmetric_cycles_per_byte, opt.symmetric_cycles_per_byte);
  // The unaccelerated misc share is identical by construction.
  EXPECT_EQ(base.hash_cycles_per_byte, opt.hash_cycles_per_byte);
  EXPECT_EQ(base.handshake_misc_cycles, opt.handshake_misc_cycles);
}

}  // namespace
}  // namespace wsp
