// Tier-2 tests for the secure-session server engine's determinism contract
// (docs/server.md) and its behaviour under sustained over-admission.
//
// The contract: for a fixed scenario seed, every metric on the virtual
// (platform-cycle) timeline — completed sessions, per-session byte totals,
// latency percentiles, drops, platform-equivalent cycles — is identical for
// ANY worker thread count.  Only wall time and backpressure accounting may
// differ.  These tests are also the designated TSan workload for the
// scheduler (tools/ci/sanitize.sh).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "server/engine.h"
#include "server/record.h"
#include "server/session_table.h"
#include "server_section.h"
#include "support/mpsc_ring.h"

namespace wsp {
namespace {

server::TrafficScenario small_mix(std::uint64_t seed, std::size_t sessions,
                                  double load) {
  server::TrafficScenario s;
  s.seed = seed;
  s.sessions = sessions;
  s.model = server::ArrivalModel::kOpenLoop;
  s.offered_load = load;
  // Keep the grid small so sanitizer builds stay fast; still mixes stream
  // and block ciphers with short and long transactions.
  s.ciphers = {ssl::Cipher::kRc4, ssl::Cipher::kAes128Cbc};
  s.transaction_sizes = {512, 2048};
  s.record_bytes = 512;
  return s;
}

server::RunReport run_with_threads(unsigned threads,
                                   const server::TrafficScenario& scenario,
                                   std::size_t queue_capacity = 32) {
  server::EngineConfig cfg;
  cfg.threads = threads;
  cfg.shards = 4;
  cfg.queue_capacity = queue_capacity;
  cfg.record_batch = 4;
  server::Engine engine(cfg);
  return engine.run(scenario);
}

void expect_same_deterministic_metrics(const server::RunReport& a,
                                       const server::RunReport& b,
                                       const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.retried, b.retried);
  EXPECT_EQ(a.repaired, b.repaired);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.degrade_enters, b.degrade_enters);
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
  // The digest folds every (id, bytes, records) triple: equality here means
  // per-session byte totals match, not just the sum.
  EXPECT_EQ(a.bytes_digest, b.bytes_digest);
  EXPECT_EQ(a.latency.p50, b.latency.p50);
  EXPECT_EQ(a.latency.p90, b.latency.p90);
  EXPECT_EQ(a.latency.p99, b.latency.p99);
  EXPECT_EQ(a.latency.max, b.latency.max);
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  EXPECT_EQ(a.throughput_per_gcycle, b.throughput_per_gcycle);
  EXPECT_EQ(a.peak_virtual_depth, b.peak_virtual_depth);
  EXPECT_EQ(a.platform_cycles_base, b.platform_cycles_base);
  EXPECT_EQ(a.platform_cycles_optimized, b.platform_cycles_optimized);
  EXPECT_EQ(a.equivalent_speedup, b.equivalent_speedup);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t i = 0; i < a.shards.size(); ++i) {
    EXPECT_EQ(a.shards[i].admitted, b.shards[i].admitted) << "shard " << i;
    EXPECT_EQ(a.shards[i].dropped, b.shards[i].dropped) << "shard " << i;
    EXPECT_EQ(a.shards[i].wire_bytes, b.shards[i].wire_bytes) << "shard " << i;
    EXPECT_EQ(a.shards[i].completed, b.shards[i].completed) << "shard " << i;
    EXPECT_EQ(a.shards[i].aborted, b.shards[i].aborted) << "shard " << i;
    EXPECT_EQ(a.shards[i].retried, b.shards[i].retried) << "shard " << i;
    EXPECT_EQ(a.shards[i].repaired, b.shards[i].repaired) << "shard " << i;
    EXPECT_EQ(a.shards[i].faults_injected, b.shards[i].faults_injected)
        << "shard " << i;
    EXPECT_EQ(a.shards[i].events_digest, b.shards[i].events_digest)
        << "shard " << i;
  }
}

server::FaultConfig chaos_faults(double scale) {
  server::FaultConfig f;
  f.wire_flip_rate = 0.05 * scale;
  f.handshake_failure_rate = 0.05 * scale;
  f.abort_rate = 0.05 * scale;
  f.stall_rate = 0.05 * scale;
  return f;
}

server::RunReport run_chaos(unsigned threads,
                            const server::TrafficScenario& scenario,
                            const server::FaultConfig& faults,
                            std::size_t queue_capacity = 32) {
  server::EngineConfig cfg;
  cfg.threads = threads;
  cfg.shards = 4;
  cfg.queue_capacity = queue_capacity;
  cfg.record_batch = 4;
  cfg.faults = faults;
  server::Engine engine(cfg);
  return engine.run(scenario);
}

TEST(ServerDeterminism, ThreadCountInvariantOpenLoop) {
  const auto scenario = small_mix(4242, 24, 0.7);
  const auto base = run_with_threads(1, scenario);
  EXPECT_EQ(base.completed, base.admitted);
  EXPECT_GT(base.completed, 0u);
  for (unsigned threads : {2u, 4u}) {
    const auto rep = run_with_threads(threads, scenario);
    expect_same_deterministic_metrics(base, rep, "open loop");
  }
}

TEST(ServerDeterminism, ThreadCountInvariantClosedLoop) {
  auto scenario = small_mix(77, 16, 0.7);
  scenario.model = server::ArrivalModel::kClosedLoop;
  scenario.users = 4;
  scenario.think_cycles = 1e6;
  const auto base = run_with_threads(1, scenario);
  EXPECT_GT(base.completed, 0u);
  const auto rep = run_with_threads(4, scenario);
  expect_same_deterministic_metrics(base, rep, "closed loop");
}

TEST(ServerDeterminism, RerunWithSameSeedIsBitIdentical) {
  const auto scenario = small_mix(99, 20, 0.8);
  expect_same_deterministic_metrics(run_with_threads(2, scenario),
                                    run_with_threads(2, scenario), "rerun");
}

TEST(ServerDeterminism, DifferentSeedsDiverge) {
  const auto a = run_with_threads(1, small_mix(1, 20, 0.8));
  const auto b = run_with_threads(1, small_mix(2, 20, 0.8));
  // Different arrival processes and session seeds: byte totals must differ.
  EXPECT_NE(a.bytes_digest, b.bytes_digest);
}

// Sustained over-admission: the engine must shed load (nonzero drops) while
// the bounded waiting room keeps queue depth and p99 latency finite.  Memory
// boundedness is expressed through the queue-depth bound: at most
// `queue_capacity` sessions wait per shard, on both timelines.
TEST(ServerSoak, OverAdmissionShedsLoadWithBoundedQueues) {
  const std::size_t kCap = 8;
  auto scenario = small_mix(4040, 96, 3.0);
  const auto rep = run_with_threads(2, scenario, kCap);

  EXPECT_EQ(rep.offered, 96u);
  EXPECT_GT(rep.dropped, 0u) << "3x over-admission must shed load";
  EXPECT_EQ(rep.admitted + rep.dropped, rep.offered);
  EXPECT_EQ(rep.completed, rep.admitted);

  // Bounded waiting room on both timelines.
  EXPECT_LE(rep.peak_virtual_depth, kCap);
  EXPECT_LE(rep.peak_real_depth, kCap);

  // With at most kCap sessions queued behind the one in service, waiting
  // time is bounded by (kCap + 1) maximal service demands.
  const auto costs = server::calibrated_costs(server::Pricing::kOptimized);
  double max_service = 0.0;
  for (std::size_t bytes : scenario.transaction_sizes) {
    max_service = std::max(
        max_service, ssl::transaction_cost(costs, bytes).total());
  }
  EXPECT_LE(rep.latency.max, (kCap + 1) * max_service);
  EXPECT_LE(rep.latency.p99, rep.latency.max);
  EXPECT_GT(rep.latency.p99, 0.0);

  // Drops are deterministic too: an independent rerun agrees exactly.
  const auto again = run_with_threads(4, scenario, kCap);
  expect_same_deterministic_metrics(rep, again, "overload rerun");
}

// The acceptance bar for the fault layer (ISSUE 5): with a fixed seed and
// ~5% fault rates, the whole RunReport — including the recovery counters
// and the per-session bytes_digest — is bit-identical for 1, 2 and 8
// worker threads.
TEST(ServerChaosDeterminism, ThreadCountInvariantUnderFaults) {
  const auto scenario = small_mix(20260805, 32, 0.8);
  const auto faults = chaos_faults(1.0);
  const auto base = run_chaos(1, scenario, faults);
  EXPECT_GT(base.faults_injected, 0u) << "chaos scenario must inject faults";
  EXPECT_EQ(base.completed + base.aborted, base.admitted)
      << "every admitted session must complete or abort";
  for (unsigned threads : {2u, 8u}) {
    const auto rep = run_chaos(threads, scenario, faults);
    expect_same_deterministic_metrics(base, rep, "chaos thread sweep");
  }
}

// Recovery actually recovers: under a wire-flip-only fault model (no
// scheduled aborts, no handshake budget exhaustion is guaranteed, but
// retries/rekeys are) the retry and repair counters are exercised and
// sessions still finish.
TEST(ServerChaosDeterminism, RepairLadderHealsFlippedRecords) {
  auto scenario = small_mix(5151, 24, 0.6);
  server::FaultConfig f;
  f.wire_flip_rate = 0.10;  // flips only: every session must survive
  const auto rep = run_chaos(1, scenario, f);
  EXPECT_GT(rep.faults_injected, 0u);
  EXPECT_GT(rep.retried, 0u) << "flipped records must be retransmitted";
  EXPECT_EQ(rep.aborted, 0u) << "a plain bit flip is always recoverable";
  EXPECT_EQ(rep.completed, rep.admitted);
  // CBC sessions need the rekey leg of the ladder (stream ciphers heal on
  // retransmit), and this mix includes AES-128-CBC.
  EXPECT_GT(rep.repaired, 0u) << "CBC desync requires rekey repairs";
}

// Chaos soak: higher load plus the full fault mix.  No session may leak
// (completed + aborted == admitted), no shard may wedge, and the real
// queue bound must hold throughout.  This is the designated TSan/ASan
// chaos workload (tools/ci/sanitize.sh).
TEST(ServerChaosSoak, NoSessionLeaksUnderFaultsAndOverload) {
  const std::size_t kCap = 8;
  auto scenario = small_mix(60606, 96, 2.0);
  const auto rep = run_chaos(4, scenario, chaos_faults(2.0), kCap);

  EXPECT_EQ(rep.offered, 96u);
  EXPECT_EQ(rep.admitted + rep.dropped, rep.offered);
  EXPECT_EQ(rep.completed + rep.aborted, rep.admitted) << "session leak";
  EXPECT_GT(rep.completed, 0u) << "chaos must not kill every session";
  EXPECT_GT(rep.aborted, 0u) << "10% abort rate must claim some sessions";
  EXPECT_LE(rep.peak_virtual_depth, kCap);
  EXPECT_LE(rep.peak_real_depth, kCap);
  // Aborted sessions ran on the same shards as everyone else; none of the
  // engine's closures may escape into the scheduler's containment path.
  EXPECT_EQ(rep.failed_tasks, 0u);

  const auto again = run_chaos(1, scenario, chaos_faults(2.0), kCap);
  expect_same_deterministic_metrics(rep, again, "chaos soak rerun");
}

// Degrade mode: a burst far over the degrade threshold must engage the
// mode (deterministically), shed load beyond the ordinary capacity drops,
// and release once drained — and the whole thing must be thread-invariant.
TEST(ServerChaosSoak, DegradeModeShedsAndRecovers) {
  auto scenario = small_mix(70707, 96, 3.0);
  server::EngineConfig cfg;
  cfg.threads = 2;
  cfg.shards = 4;
  cfg.queue_capacity = 8;
  cfg.record_batch = 4;
  cfg.degrade_depth = 12;  // well under 4 shards * capacity 8
  server::Engine engine(cfg);
  const auto rep = engine.run(scenario);

  EXPECT_GT(rep.degrade_enters, 0u) << "3x overload must trip degrade mode";
  EXPECT_GT(rep.shed, 0u) << "degrade mode must shed load";
  EXPECT_EQ(rep.admitted + rep.dropped, rep.offered);
  EXPECT_EQ(rep.completed + rep.aborted, rep.admitted);

  server::EngineConfig cfg2 = cfg;
  cfg2.threads = 8;
  const auto rep2 = server::Engine(cfg2).run(scenario);
  expect_same_deterministic_metrics(rep, rep2, "degrade thread sweep");
}

// --- batched data plane (ISSUE 8) ------------------------------------------

server::RunReport run_batched(unsigned threads, unsigned lanes,
                              const server::TrafficScenario& scenario,
                              const server::FaultConfig& faults = {},
                              std::size_t queue_capacity = 32) {
  server::EngineConfig cfg;
  cfg.threads = threads;
  cfg.shards = 4;
  cfg.queue_capacity = queue_capacity;
  cfg.record_batch = 4;
  cfg.batch_lanes = lanes;
  cfg.faults = faults;
  return server::Engine(cfg).run(scenario);
}

// The batch acceptance bar (ISSUE 8): every deterministic RunReport field —
// including the per-shard event digests expect_same_deterministic_metrics
// now compares — is bit-identical across batch_lanes x threads.
TEST(ServerBatchDeterminism, LanesAndThreadCountInvariant) {
  auto scenario = small_mix(31337, 32, 0.8);
  // CBC-heavy mix so the batched kernels actually carry the records.
  scenario.ciphers = {ssl::Cipher::kTripleDesCbc, ssl::Cipher::kAes128Cbc};
  const auto base = run_batched(1, 1, scenario);
  EXPECT_EQ(base.completed, base.admitted);
  EXPECT_GT(base.completed, 0u);
  EXPECT_EQ(base.batched_records, 0u) << "scalar plane must never dispatch";
  for (unsigned lanes : {1u, 4u, 8u}) {
    for (unsigned threads : {1u, 2u, 8u}) {
      if (lanes == 1 && threads == 1) continue;
      const auto rep = run_batched(threads, lanes, scenario);
      expect_same_deterministic_metrics(base, rep, "lanes/threads sweep");
    }
  }
  // ... and the batched plane must actually have run batched.
  const auto b8 = run_batched(2, 8, scenario);
  EXPECT_GT(b8.batched_records, 0u);
  EXPECT_GT(b8.batch_flushes, 0u);
  EXPECT_EQ(b8.batch_lanes, 8u);
}

// Same bar under the full chaos fault mix (wire flips force the batched
// first attempt into the scalar repair ladder; RC4 exercises the deferred
// stream-cipher leg of the cohort path).
TEST(ServerBatchDeterminism, ChaosFaultsInvariantAcrossLanes) {
  auto scenario = small_mix(424242, 32, 0.8);
  scenario.ciphers = {ssl::Cipher::kTripleDesCbc, ssl::Cipher::kAes128Cbc,
                      ssl::Cipher::kRc4};
  const auto faults = chaos_faults(1.0);
  const auto base = run_batched(1, 1, scenario, faults);
  EXPECT_GT(base.faults_injected, 0u);
  EXPECT_EQ(base.completed + base.aborted, base.admitted) << "session leak";
  for (unsigned lanes : {2u, 4u, 8u}) {
    const auto rep = run_batched(4, lanes, scenario, faults);
    expect_same_deterministic_metrics(base, rep, "chaos lanes sweep");
  }
}

// A run recorded on the batched plane replays bit-exactly (the kConfig
// chunk carries batch_lanes, so the replay re-executes batched too) at any
// thread count.
TEST(ServerBatchDeterminism, BatchedRecordReplayRoundTrip) {
  auto scenario = small_mix(555, 24, 0.9);
  scenario.ciphers = {ssl::Cipher::kAes128Cbc, ssl::Cipher::kTripleDesCbc};
  server::EngineConfig cfg;
  cfg.threads = 2;
  cfg.shards = 4;
  cfg.queue_capacity = 32;
  cfg.record_batch = 4;
  cfg.batch_lanes = 8;

  const server::RunRecord rec = server::record_run(cfg, scenario);
  const auto bytes = server::encode_run_record(rec);
  const server::RunRecord decoded = server::decode_run_record(bytes);
  EXPECT_EQ(decoded.config.batch_lanes, 8u);
  for (unsigned threads : {1u, 4u}) {
    const auto result = server::replay_run(decoded, threads);
    EXPECT_TRUE(result.ok()) << "threads=" << threads << ": "
                             << (result.mismatches.empty()
                                     ? ""
                                     : result.mismatches.front());
  }
}

// --- million-session data plane (ISSUE 7) ---------------------------------

// Multi-producer soak for the scheduler's shard queue: several producers
// hammer one small ring while a single consumer drains it.  Per-producer
// FIFO order and exact delivery counts must survive; under TSan this is the
// designated race workload for support/mpsc_ring.h.
TEST(MpscRingSoak, MultiProducerSingleConsumerDeliversEverythingInOrder) {
  constexpr unsigned kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  support::MpscRing<std::uint64_t> ring(64);

  std::vector<std::thread> producers;
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        // High bits: producer id; low bits: that producer's sequence.
        std::uint64_t v = (static_cast<std::uint64_t>(p) << 32) | i;
        while (!ring.try_push(v)) std::this_thread::yield();
      }
    });
  }

  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t popped = 0;
  while (popped < kProducers * kPerProducer) {
    std::uint64_t v = 0;
    if (!ring.try_pop(v)) {
      std::this_thread::yield();
      continue;
    }
    const auto p = static_cast<unsigned>(v >> 32);
    ASSERT_LT(p, kProducers);
    EXPECT_EQ(v & 0xFFFFFFFFu, next_seq[p]) << "producer " << p;
    ++next_seq[p];
    ++popped;
  }
  for (auto& t : producers) t.join();

  std::uint64_t v = 0;
  EXPECT_FALSE(ring.try_pop(v));
  for (unsigned p = 0; p < kProducers; ++p) EXPECT_EQ(next_seq[p], kPerProducer);
}

// Concurrent churn through the sharded slab table: each worker owns a
// disjoint id range and repeatedly inserts, reads back and erases sessions.
// Size/peak accounting must come out exact and no worker may ever observe
// another worker's session through its own handles.
TEST(ServerTableSoak, ConcurrentInsertEraseChurnKeepsAccountingExact) {
  constexpr unsigned kWorkers = 4;
  constexpr std::uint64_t kIdsPerWorker = 200;
  constexpr int kWaves = 5;
  server::SessionTable table(4);
  std::atomic<bool> failed{false};

  std::vector<std::thread> workers;
  for (unsigned w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&table, &failed, w] {
      const std::uint64_t base = 1 + w * 100000ull;
      for (int wave = 0; wave < kWaves; ++wave) {
        std::vector<server::SessionHandle> handles;
        for (std::uint64_t i = 0; i < kIdsPerWorker; ++i) {
          server::SessionConfig cfg;
          cfg.id = base + i;
          cfg.transaction_bytes = 512;
          cfg.seed = cfg.id;
          const auto ins = table.insert(cfg);
          if (ins.session == nullptr || ins.session->id() != cfg.id) {
            failed = true;
            return;
          }
          handles.push_back(ins.handle);
        }
        for (const auto& h : handles) {
          server::Session* s = table.get(h);
          if (s == nullptr || s->id() < base ||
              s->id() >= base + kIdsPerWorker || !table.erase(h)) {
            failed = true;
            return;
          }
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  EXPECT_FALSE(failed.load());
  EXPECT_EQ(table.size(), 0u);
  // Peak is at least one worker's full wave and at most everyone's.
  EXPECT_GE(table.peak_size(), kIdsPerWorker);
  EXPECT_LE(table.peak_size(), kWorkers * kIdsPerWorker);
}

// Resume mode (the million-session regime, docs/server.md): the abbreviated
// handshake path must honor the same thread-invariance contract as the full
// one, and the structural memory_per_session figure is a build constant.
TEST(ServerDeterminism, ResumeModeIsThreadCountInvariant) {
  auto scenario = small_mix(8181, 48, 0.9);
  scenario.resume_sessions = true;
  const auto base = run_with_threads(1, scenario);
  EXPECT_EQ(base.completed, base.admitted);
  EXPECT_GT(base.completed, 0u);
  EXPECT_EQ(base.memory_per_session, server::SessionTable::bytes_per_session());
  for (unsigned threads : {2u, 8u}) {
    const auto rep = run_with_threads(threads, scenario);
    expect_same_deterministic_metrics(base, rep, "resume thread sweep");
    EXPECT_EQ(rep.memory_per_session, base.memory_per_session);
  }
}

// Record a resume-mode run, replay it at other thread counts: RunReport,
// shard digests and the full event stream must verify bit-exactly — the
// scale scenario rides the same wsp-replay-v1 path as everything else.
TEST(ServerDeterminism, ResumeModeRecordReplayRoundTrip) {
  auto scenario = small_mix(9292, 40, 1.1);
  scenario.resume_sessions = true;
  server::EngineConfig cfg;
  cfg.threads = 2;
  cfg.shards = 4;
  cfg.queue_capacity = 32;
  cfg.record_batch = 4;

  const server::RunRecord rec = server::record_run(cfg, scenario);
  EXPECT_TRUE(rec.scenario.resume_sessions);
  EXPECT_EQ(rec.report.memory_per_session,
            server::SessionTable::bytes_per_session());
  const auto bytes = server::encode_run_record(rec);
  const server::RunRecord decoded = server::decode_run_record(bytes);
  EXPECT_TRUE(decoded.scenario.resume_sessions);
  EXPECT_EQ(decoded.report.memory_per_session, rec.report.memory_per_session);

  for (unsigned threads : {1u, 8u}) {
    const auto result = server::replay_run(decoded, threads);
    EXPECT_TRUE(result.ok()) << "threads=" << threads << ": "
                             << (result.mismatches.empty()
                                     ? ""
                                     : result.mismatches.front());
  }
}

// Scale soak: a 20k-session slice of the bench `scale` scenario (resumed
// sessions, RC4 short records, deep pinned-shard rings).  The leak
// invariant must hold with tens of thousands of live sessions churning
// through the slab table; this is the designated sanitizer workload for
// the scale path (tools/ci/sanitize.sh runs the 100k point separately).
TEST(ServerScaleSoak, TwentyThousandResumedSessionsDoNotLeak) {
  const auto scenario = bench::scale_scenario(75, 20000);
  server::EngineConfig cfg = bench::scale_config(4);
  server::Engine engine(cfg);
  const auto rep = engine.run(scenario);

  EXPECT_EQ(rep.offered, 20000u);
  EXPECT_EQ(rep.admitted + rep.dropped, rep.offered);
  EXPECT_EQ(rep.completed + rep.aborted, rep.admitted) << "session leak";
  EXPECT_GT(rep.completed, 0u);
  EXPECT_GT(rep.peak_sessions, 1000u) << "scale run must hold many live sessions";
  EXPECT_EQ(rep.failed_tasks, 0u);
  EXPECT_EQ(rep.memory_per_session, server::SessionTable::bytes_per_session());

  // Same scenario, different thread count: deterministic metrics agree.
  server::EngineConfig cfg2 = cfg;
  cfg2.threads = 1;
  const auto rep2 = server::Engine(cfg2).run(scenario);
  expect_same_deterministic_metrics(rep, rep2, "scale soak rerun");
}

}  // namespace
}  // namespace wsp
