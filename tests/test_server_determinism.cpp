// Tier-2 tests for the secure-session server engine's determinism contract
// (docs/server.md) and its behaviour under sustained over-admission.
//
// The contract: for a fixed scenario seed, every metric on the virtual
// (platform-cycle) timeline — completed sessions, per-session byte totals,
// latency percentiles, drops, platform-equivalent cycles — is identical for
// ANY worker thread count.  Only wall time and backpressure accounting may
// differ.  These tests are also the designated TSan workload for the
// scheduler (tools/ci/sanitize.sh).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "server/engine.h"
#include "server_section.h"

namespace wsp {
namespace {

server::TrafficScenario small_mix(std::uint64_t seed, std::size_t sessions,
                                  double load) {
  server::TrafficScenario s;
  s.seed = seed;
  s.sessions = sessions;
  s.model = server::ArrivalModel::kOpenLoop;
  s.offered_load = load;
  // Keep the grid small so sanitizer builds stay fast; still mixes stream
  // and block ciphers with short and long transactions.
  s.ciphers = {ssl::Cipher::kRc4, ssl::Cipher::kAes128Cbc};
  s.transaction_sizes = {512, 2048};
  s.record_bytes = 512;
  return s;
}

server::RunReport run_with_threads(unsigned threads,
                                   const server::TrafficScenario& scenario,
                                   std::size_t queue_capacity = 32) {
  server::EngineConfig cfg;
  cfg.threads = threads;
  cfg.shards = 4;
  cfg.queue_capacity = queue_capacity;
  cfg.record_batch = 4;
  server::Engine engine(cfg);
  return engine.run(scenario);
}

void expect_same_deterministic_metrics(const server::RunReport& a,
                                       const server::RunReport& b,
                                       const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
  // The digest folds every (id, bytes, records) triple: equality here means
  // per-session byte totals match, not just the sum.
  EXPECT_EQ(a.bytes_digest, b.bytes_digest);
  EXPECT_EQ(a.latency.p50, b.latency.p50);
  EXPECT_EQ(a.latency.p90, b.latency.p90);
  EXPECT_EQ(a.latency.p99, b.latency.p99);
  EXPECT_EQ(a.latency.max, b.latency.max);
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  EXPECT_EQ(a.throughput_per_gcycle, b.throughput_per_gcycle);
  EXPECT_EQ(a.peak_virtual_depth, b.peak_virtual_depth);
  EXPECT_EQ(a.platform_cycles_base, b.platform_cycles_base);
  EXPECT_EQ(a.platform_cycles_optimized, b.platform_cycles_optimized);
  EXPECT_EQ(a.equivalent_speedup, b.equivalent_speedup);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t i = 0; i < a.shards.size(); ++i) {
    EXPECT_EQ(a.shards[i].admitted, b.shards[i].admitted) << "shard " << i;
    EXPECT_EQ(a.shards[i].dropped, b.shards[i].dropped) << "shard " << i;
    EXPECT_EQ(a.shards[i].wire_bytes, b.shards[i].wire_bytes) << "shard " << i;
  }
}

TEST(ServerDeterminism, ThreadCountInvariantOpenLoop) {
  const auto scenario = small_mix(4242, 24, 0.7);
  const auto base = run_with_threads(1, scenario);
  EXPECT_EQ(base.completed, base.admitted);
  EXPECT_GT(base.completed, 0u);
  for (unsigned threads : {2u, 4u}) {
    const auto rep = run_with_threads(threads, scenario);
    expect_same_deterministic_metrics(base, rep, "open loop");
  }
}

TEST(ServerDeterminism, ThreadCountInvariantClosedLoop) {
  auto scenario = small_mix(77, 16, 0.7);
  scenario.model = server::ArrivalModel::kClosedLoop;
  scenario.users = 4;
  scenario.think_cycles = 1e6;
  const auto base = run_with_threads(1, scenario);
  EXPECT_GT(base.completed, 0u);
  const auto rep = run_with_threads(4, scenario);
  expect_same_deterministic_metrics(base, rep, "closed loop");
}

TEST(ServerDeterminism, RerunWithSameSeedIsBitIdentical) {
  const auto scenario = small_mix(99, 20, 0.8);
  expect_same_deterministic_metrics(run_with_threads(2, scenario),
                                    run_with_threads(2, scenario), "rerun");
}

TEST(ServerDeterminism, DifferentSeedsDiverge) {
  const auto a = run_with_threads(1, small_mix(1, 20, 0.8));
  const auto b = run_with_threads(1, small_mix(2, 20, 0.8));
  // Different arrival processes and session seeds: byte totals must differ.
  EXPECT_NE(a.bytes_digest, b.bytes_digest);
}

// Sustained over-admission: the engine must shed load (nonzero drops) while
// the bounded waiting room keeps queue depth and p99 latency finite.  Memory
// boundedness is expressed through the queue-depth bound: at most
// `queue_capacity` sessions wait per shard, on both timelines.
TEST(ServerSoak, OverAdmissionShedsLoadWithBoundedQueues) {
  const std::size_t kCap = 8;
  auto scenario = small_mix(4040, 96, 3.0);
  const auto rep = run_with_threads(2, scenario, kCap);

  EXPECT_EQ(rep.offered, 96u);
  EXPECT_GT(rep.dropped, 0u) << "3x over-admission must shed load";
  EXPECT_EQ(rep.admitted + rep.dropped, rep.offered);
  EXPECT_EQ(rep.completed, rep.admitted);

  // Bounded waiting room on both timelines.
  EXPECT_LE(rep.peak_virtual_depth, kCap);
  EXPECT_LE(rep.peak_real_depth, kCap);

  // With at most kCap sessions queued behind the one in service, waiting
  // time is bounded by (kCap + 1) maximal service demands.
  const auto costs = server::calibrated_costs(server::Pricing::kOptimized);
  double max_service = 0.0;
  for (std::size_t bytes : scenario.transaction_sizes) {
    max_service = std::max(
        max_service, ssl::transaction_cost(costs, bytes).total());
  }
  EXPECT_LE(rep.latency.max, (kCap + 1) * max_service);
  EXPECT_LE(rep.latency.p99, rep.latency.max);
  EXPECT_GT(rep.latency.p99, 0.0);

  // Drops are deterministic too: an independent rerun agrees exactly.
  const auto again = run_with_threads(4, scenario, kCap);
  expect_same_deterministic_metrics(rep, again, "overload rerun");
}

}  // namespace
}  // namespace wsp
