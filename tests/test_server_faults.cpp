// Tier-1 tests for the deterministic fault-injection layer (src/server/
// faults.*) and the recovery machinery it drives: FaultPlan purity, config
// validation, the session repair ladder (retransmit -> rekey -> abort), and
// the scheduler's exception containment.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "server/engine.h"
#include "server/faults.h"
#include "server/session.h"

namespace wsp {
namespace {

using server::FaultConfig;
using server::FaultPlan;
using server::FaultSchedule;
using server::Session;
using server::SessionConfig;
using server::SessionError;
using server::SessionErrorKind;
using server::SessionState;

// One shared small server key: generation dominates the test's cost.
const rsa::PrivateKey& server_key() {
  static const rsa::PrivateKey key = [] {
    Rng rng(601);
    return rsa::generate_key(512, rng);
  }();
  return key;
}

SessionConfig faulty_session(std::uint64_t id, ssl::Cipher cipher,
                             std::size_t bytes, const FaultSchedule& faults) {
  SessionConfig cfg;
  cfg.id = id;
  cfg.cipher = cipher;
  cfg.transaction_bytes = bytes;
  cfg.record_bytes = 256;
  cfg.seed = 0xFA000000 + id;
  cfg.faults = faults;
  return cfg;
}

void establish(Session& s) {
  ModexpEngine client{ModexpConfig{}}, server{ModexpConfig{}};
  s.handshake(server_key(), client, server);
}

FaultSchedule flips_every_record(std::uint64_t key = 7) {
  FaultSchedule f;
  f.key = key;  // nonzero: schedule is live
  f.wire_flip_rate = 1.0;
  f.record_retry_budget = 2;
  return f;
}

TEST(FaultPlan, SchedulesArePureFunctionsOfSeedAndId) {
  FaultConfig cfg;
  cfg.wire_flip_rate = 0.3;
  cfg.handshake_failure_rate = 0.3;
  cfg.abort_rate = 0.3;
  cfg.stall_rate = 0.3;
  const FaultPlan a(cfg, 42), b(cfg, 42), other(cfg, 43);
  bool any_diverged = false;
  for (std::uint64_t id = 0; id < 64; ++id) {
    const FaultSchedule sa = a.schedule_for(id);
    const FaultSchedule sb = b.schedule_for(id);
    EXPECT_EQ(sa.key, sb.key);
    EXPECT_EQ(sa.handshake_failures, sb.handshake_failures);
    EXPECT_EQ(sa.abort_scheduled, sb.abort_scheduled);
    EXPECT_EQ(sa.abort_record, sb.abort_record);
    EXPECT_EQ(sa.stall_scheduled, sb.stall_scheduled);
    EXPECT_EQ(sa.stall_cycles, sb.stall_cycles);
    // Per-record decisions are pure too: re-probing never changes them.
    for (std::uint64_t r = 0; r < 8; ++r) {
      EXPECT_EQ(sa.flip_attempts(r), sb.flip_attempts(r));
      EXPECT_EQ(sa.flip_attempts(r), sa.flip_attempts(r));
    }
    if (sa.key != other.schedule_for(id).key) any_diverged = true;
  }
  EXPECT_TRUE(any_diverged) << "different seeds must yield different chaos";
}

TEST(FaultPlan, DisabledConfigYieldsBenignSchedules) {
  const FaultPlan plan(FaultConfig{}, 42);
  EXPECT_FALSE(plan.enabled());
  for (std::uint64_t id = 0; id < 16; ++id) {
    const FaultSchedule s = plan.schedule_for(id);
    EXPECT_TRUE(s.benign());
    EXPECT_EQ(s.flip_attempts(id), 0u);
    EXPECT_FALSE(s.poisons(id));
  }
}

TEST(FaultPlan, RejectsMalformedConfig) {
  FaultConfig bad;
  bad.wire_flip_rate = 1.5;
  EXPECT_THROW(FaultPlan(bad, 1), std::invalid_argument);
  bad = FaultConfig{};
  bad.abort_rate = -0.1;
  EXPECT_THROW(FaultPlan(bad, 1), std::invalid_argument);
  bad = FaultConfig{};
  bad.stall_cycles = 0.0;
  EXPECT_THROW(FaultPlan(bad, 1), std::invalid_argument);
  bad = FaultConfig{};
  bad.backoff_cap_cycles = bad.backoff_base_cycles / 2;
  EXPECT_THROW(FaultPlan(bad, 1), std::invalid_argument);
}

TEST(SessionError, CarriesKindAndSessionId) {
  const SessionError e(SessionErrorKind::kAborted, 17, "budget exhausted");
  EXPECT_EQ(e.kind(), SessionErrorKind::kAborted);
  EXPECT_EQ(e.session_id(), 17u);
  EXPECT_NE(std::string(e.what()).find("17"), std::string::npos);
  EXPECT_NE(std::string(e.what()).find("aborted"), std::string::npos);
}

TEST(EngineConfigValidation, RejectsDegenerateConfigs) {
  auto expect_invalid = [](server::EngineConfig cfg) {
    EXPECT_THROW(server::Engine{cfg}, std::invalid_argument);
  };
  server::EngineConfig cfg;
  // shards = 0 is not degenerate any more: it resolves to the hardware
  // core count (clamped to [1, 64]).
  cfg.shards = 0;
  EXPECT_GE(server::Engine(cfg).config().shards, 1u);
  EXPECT_LE(server::Engine(cfg).config().shards, 64u);
  cfg = server::EngineConfig{};
  cfg.queue_capacity = 0;
  expect_invalid(cfg);
  cfg = server::EngineConfig{};
  cfg.record_batch = 0;
  expect_invalid(cfg);
  cfg = server::EngineConfig{};
  cfg.rsa_bits = 256;  // too small to carry a 48-byte premaster safely
  expect_invalid(cfg);
  cfg = server::EngineConfig{};
  cfg.faults.handshake_failure_rate = 2.0;
  expect_invalid(cfg);
  // batch_lanes must be a kernel-supported lane width: 1..8.
  cfg = server::EngineConfig{};
  cfg.batch_lanes = 0;
  expect_invalid(cfg);
  cfg = server::EngineConfig{};
  cfg.batch_lanes = 9;
  expect_invalid(cfg);
  cfg = server::EngineConfig{};
  cfg.batch_lanes = 8;
  EXPECT_EQ(server::Engine(cfg).config().batch_lanes, 8u);
  // threads is host-dependent and stays clamped, not rejected.
  cfg = server::EngineConfig{};
  cfg.threads = 0;
  EXPECT_EQ(server::Engine(cfg).config().threads, 1u);
}

// Engine::run() validates the scenario before touching any shard state
// (docs/scenarios.md §3): a malformed TrafficScenario — hand-built or
// decoded from a hostile replay blob — must be rejected as
// std::invalid_argument, never half-executed.
TEST(TrafficScenarioValidation, RejectsDegenerateFlatScenarios) {
  auto expect_invalid = [](const server::TrafficScenario& sc) {
    server::EngineConfig cfg;
    cfg.shards = 2;
    server::Engine engine(cfg);
    EXPECT_THROW(engine.run(sc), std::invalid_argument);
  };
  auto base = [] {
    server::TrafficScenario sc;
    sc.sessions = 4;
    sc.ciphers = {ssl::Cipher::kRc4};
    sc.transaction_sizes = {512};
    return sc;
  };
  auto sc = base();
  sc.sessions = 0;
  expect_invalid(sc);
  sc = base();
  sc.ciphers.clear();
  expect_invalid(sc);
  sc = base();
  sc.transaction_sizes = {0};
  expect_invalid(sc);
  sc = base();
  sc.offered_load = -1.0;
  expect_invalid(sc);
  sc = base();
  sc.offered_load = std::numeric_limits<double>::infinity();
  expect_invalid(sc);
  sc = base();
  sc.model = server::ArrivalModel::kClosedLoop;
  sc.users = 0;
  expect_invalid(sc);
  sc = base();
  sc.think_cycles = -5.0;
  expect_invalid(sc);
  sc = base();
  sc.record_bytes = 0;
  expect_invalid(sc);
}

TEST(TrafficScenarioValidation, RejectsDegeneratePhasedPrograms) {
  auto expect_invalid = [](const server::TrafficScenario& sc) {
    server::EngineConfig cfg;
    cfg.shards = 2;
    server::Engine engine(cfg);
    EXPECT_THROW(engine.run(sc), std::invalid_argument);
  };
  auto base = [] {
    server::TrafficScenario sc;
    server::TrafficPhase ph;
    ph.name = "p";
    ph.sessions = 4;
    ph.cipher_mix = {{ssl::Cipher::kRc4, 1}};
    ph.size_mix = {{512, 1}};
    sc.phases = {ph};
    return sc;
  };
  auto sc = base();
  sc.phases[0].sessions = 0;
  expect_invalid(sc);
  sc = base();
  sc.phases[0].cipher_mix.clear();
  expect_invalid(sc);
  sc = base();
  sc.phases[0].size_mix = {{0, 1}};
  expect_invalid(sc);
  sc = base();
  sc.phases[0].cipher_mix[0].weight = 0;
  expect_invalid(sc);
  sc = base();
  sc.phases[0].resume_fraction = 1.5;
  expect_invalid(sc);
  sc = base();
  sc.phases[0].model = server::ArrivalModel::kClosedLoop;
  sc.phases[0].users = 0;
  expect_invalid(sc);
  sc = base();
  server::FaultConfig bad_faults;
  bad_faults.wire_flip_rate = 2.0;
  sc.phases[0].faults = bad_faults;
  expect_invalid(sc);
  // The benign phased baseline itself runs clean.
  sc = base();
  server::EngineConfig cfg;
  cfg.shards = 2;
  server::Engine engine(cfg);
  const auto report = engine.run(sc);
  EXPECT_EQ(report.completed + report.aborted, report.admitted);
}

// A stream-cipher session heals flipped records by plain retransmission:
// RC4 keystream and sequence numbers stay aligned across a rejected record,
// so the ladder never needs the rekey leg.
TEST(ServerSessionFaults, Rc4HealsFlippedRecordsByRetransmit) {
  Session s(faulty_session(1, ssl::Cipher::kRc4, 600, flips_every_record()));
  establish(s);
  s.pump(100);
  EXPECT_TRUE(s.finished());
  EXPECT_EQ(s.state(), SessionState::kEstablished);
  EXPECT_EQ(s.records(), 3u);
  EXPECT_GT(s.faults_seen(), 0u);
  EXPECT_GT(s.retries(), 0u);
  EXPECT_EQ(s.repairs(), 0u) << "stream ciphers must not need rekey";
  s.teardown();
  EXPECT_EQ(s.state(), SessionState::kClosed);
}

// A CBC session desyncs on a flipped record (the receiver's chaining IV is
// taken from the corrupted ciphertext), so retransmits keep failing and the
// ladder must escalate to rekey() — which genuinely repairs it.
TEST(ServerSessionFaults, CbcRecoversViaRekeyRepair) {
  Session s(faulty_session(2, ssl::Cipher::kAes128Cbc, 600,
                           flips_every_record()));
  establish(s);
  s.pump(100);
  EXPECT_TRUE(s.finished());
  EXPECT_EQ(s.records(), 3u);
  EXPECT_GT(s.repairs(), 0u) << "CBC desync requires the rekey leg";
  EXPECT_GT(s.rekeys(), 0u);
  EXPECT_GT(s.retries(), s.repairs()) << "retransmits precede each rekey";
}

// An unrecoverable record (every transmission corrupted) must exhaust the
// ladder and abort — never complete, never silently accept corrupt bytes.
TEST(ServerSessionFaults, PoisonedRecordExhaustsLadderAndAborts) {
  FaultSchedule f;
  f.key = 9;
  f.record_retry_budget = 2;
  f.abort_scheduled = true;
  f.abort_record = 1;  // record 0 clean, record 1 unrecoverable
  Session s(faulty_session(3, ssl::Cipher::kAes128Cbc, 600, f));
  establish(s);
  try {
    s.pump(100);
    FAIL() << "poisoned record must abort the session";
  } catch (const SessionError& e) {
    EXPECT_EQ(e.kind(), SessionErrorKind::kAborted);
    EXPECT_EQ(e.session_id(), 3u);
  }
  EXPECT_EQ(s.state(), SessionState::kAborted);
  EXPECT_EQ(s.records(), 1u) << "only the clean record may count";
  EXPECT_FALSE(s.finished());
  // Aborted is terminal: the lifecycle rejects further use, teardown is a
  // no-op, and abort() stays idempotent.
  EXPECT_THROW(s.pump(1), std::logic_error);
  EXPECT_THROW(s.rekey(), std::logic_error);
  s.teardown();
  EXPECT_EQ(s.state(), SessionState::kAborted);
  s.abort();
  EXPECT_EQ(s.state(), SessionState::kAborted);
}

// Scheduled handshake failures corrupt the premaster on the wire: the
// attempt fails with a typed error, the session stays kPending, and the
// scheduled number of retries later the exchange succeeds.
TEST(ServerSessionFaults, HandshakeFailsThenRecovers) {
  FaultSchedule f;
  f.key = 5;
  f.handshake_failures = 2;
  Session s(faulty_session(4, ssl::Cipher::kRc4, 256, f));
  ModexpEngine ce{ModexpConfig{}}, se{ModexpConfig{}};
  for (unsigned attempt = 0; attempt < 2; ++attempt) {
    try {
      s.handshake(server_key(), ce, se);
      FAIL() << "scheduled handshake failure must throw";
    } catch (const SessionError& e) {
      EXPECT_EQ(e.kind(), SessionErrorKind::kHandshakeFailed);
    }
    EXPECT_EQ(s.state(), SessionState::kPending) << "failure is retryable";
  }
  s.handshake(server_key(), ce, se);  // third attempt is clean
  EXPECT_EQ(s.state(), SessionState::kEstablished);
  EXPECT_EQ(s.handshake_attempts(), 3u);
  EXPECT_EQ(s.faults_seen(), 2u);
  s.pump(100);
  EXPECT_TRUE(s.finished());
}

// Satellite regression (ISSUE 5): a task that throws must not wedge its
// shard.  One poisoned task per shard, surrounded by real work — everything
// else still executes, the failure is counted, and drain() returns.
TEST(ServerScheduler, PoisonedTaskDoesNotWedgeItsShard) {
  ThreadPool pool(2);
  server::RecordScheduler sched(pool, 2, /*capacity=*/4, /*batch=*/2);
  std::atomic<int> ran{0};
  for (unsigned shard = 0; shard < 2; ++shard) {
    for (int i = 0; i < 10; ++i) {
      if (i == 3) {
        sched.push(shard, [] { throw std::runtime_error("poisoned task"); });
      } else {
        sched.push(shard, [&ran] { ran.fetch_add(1); });
      }
    }
  }
  sched.drain();
  EXPECT_EQ(ran.load(), 18) << "work after the poisoned task must still run";
  for (unsigned shard = 0; shard < 2; ++shard) {
    const auto counters = sched.counters(shard);
    EXPECT_EQ(counters.enqueued, 10u) << "shard " << shard;
    EXPECT_EQ(counters.executed, 10u) << "shard " << shard;
    EXPECT_EQ(counters.failed, 1u) << "shard " << shard;
  }
}

// The containment path must also wake producers blocked in push(): fill a
// tiny queue with throwing tasks and keep pushing — if a failure stalled
// the pump, the pushes (and this test) would deadlock.
TEST(ServerScheduler, ContainmentKeepsBackpressureFlowing) {
  ThreadPool pool(1);
  server::RecordScheduler sched(pool, 1, /*capacity=*/2, /*batch=*/1);
  for (int i = 0; i < 32; ++i) {
    sched.push(0, [] { throw std::runtime_error("always fails"); });
  }
  sched.drain();
  const auto counters = sched.counters(0);
  EXPECT_EQ(counters.executed, 32u);
  EXPECT_EQ(counters.failed, 32u);
  EXPECT_LE(counters.peak_depth, 2u);
}

}  // namespace
}  // namespace wsp
