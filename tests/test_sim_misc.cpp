// Coverage for the smaller simulator pieces: memory block ops and bounds,
// ISA metadata predicates, disassembly, and the Machine runtime harness.
#include <gtest/gtest.h>

#include "kernels/mpn_kernels.h"
#include "sim/memory.h"

namespace wsp {
namespace {

TEST(Memory, LittleEndianLayout) {
  sim::Memory mem(4096);
  mem.store32(100, 0x11223344u);
  EXPECT_EQ(mem.load8(100), 0x44);
  EXPECT_EQ(mem.load8(103), 0x11);
  EXPECT_EQ(mem.load16(100), 0x3344);
  EXPECT_EQ(mem.load16(102), 0x1122);
}

TEST(Memory, BlockTransferRoundTrip) {
  sim::Memory mem(4096);
  std::vector<std::uint8_t> data = {9, 8, 7, 6, 5};
  mem.write_block(200, data.data(), data.size());
  std::vector<std::uint8_t> back(5);
  mem.read_block(200, back.data(), back.size());
  EXPECT_EQ(back, data);
}

TEST(Memory, BoundsChecked) {
  sim::Memory mem(128);
  EXPECT_THROW(mem.load32(126), std::out_of_range);
  EXPECT_THROW(mem.store8(128, 1), std::out_of_range);
  EXPECT_NO_THROW(mem.load32(124));
  std::uint8_t b = 0;
  EXPECT_THROW(mem.read_block(120, &b, 20), std::out_of_range);
}

TEST(Isa, OperandPredicates) {
  using isa::Op;
  EXPECT_TRUE(isa::reads_rs1(Op::kAdd));
  EXPECT_TRUE(isa::reads_rs2(Op::kAdd));
  EXPECT_TRUE(isa::writes_rd(Op::kAdd));
  EXPECT_TRUE(isa::reads_rs1(Op::kLw));
  EXPECT_FALSE(isa::reads_rs2(Op::kLw));
  EXPECT_TRUE(isa::writes_rd(Op::kLw));
  EXPECT_TRUE(isa::reads_rs2(Op::kSw));
  EXPECT_FALSE(isa::writes_rd(Op::kSw));
  EXPECT_FALSE(isa::reads_rs1(Op::kLui));
  EXPECT_FALSE(isa::writes_rd(Op::kBeq));
  EXPECT_FALSE(isa::reads_rs1(Op::kCall));
}

TEST(Isa, Disassembly) {
  isa::Instr instr{isa::Op::kAddi, 5, 6, 0, -4, 0};
  const std::string s = isa::to_string(instr);
  EXPECT_NE(s.find("addi"), std::string::npos);
  EXPECT_NE(s.find("rd=r5"), std::string::npos);
  EXPECT_NE(s.find("imm=-4"), std::string::npos);
  isa::Instr cust{isa::Op::kCustom, 0, 0, 0, 0, 42};
  EXPECT_NE(isa::to_string(cust).find("custom#42"), std::string::npos);
}

TEST(Machine, AllocAligns) {
  kernels::Machine m = kernels::make_mpn_machine();
  const std::uint32_t a = m.alloc(3);
  const std::uint32_t b = m.alloc(8, 16);
  EXPECT_EQ(b % 16, 0u);
  EXPECT_GT(b, a);
}

TEST(Machine, AllocRejectsBadAlignment) {
  kernels::Machine m = kernels::make_mpn_machine();
  // align == 0 used to hang forever in the byte-stepping alignment loop.
  EXPECT_THROW(m.alloc(4, 0), std::invalid_argument);
  EXPECT_THROW(m.alloc(4, 3), std::invalid_argument);
  EXPECT_THROW(m.alloc(4, 24), std::invalid_argument);
}

TEST(Machine, AllocLargeAlignmentRoundsUpArithmetically) {
  kernels::Machine m = kernels::make_mpn_machine();
  (void)m.alloc(1);
  const std::uint32_t a = m.alloc(16, 1u << 16);
  EXPECT_EQ(a % (1u << 16), 0u);
  const std::uint32_t b = m.alloc(4, 4096);
  EXPECT_EQ(b % 4096, 0u);
  EXPECT_GT(b, a);
}

TEST(Machine, FailedAllocLeavesHeapConsistent) {
  kernels::Machine m = kernels::make_mpn_machine();
  const std::uint32_t before = m.alloc(4);
  EXPECT_THROW(m.alloc(64u << 20), std::runtime_error);
  const std::uint32_t after = m.alloc(4);
  EXPECT_EQ(after, before + 4);
}

TEST(Machine, HeapResetReusesSpace) {
  kernels::Machine m = kernels::make_mpn_machine();
  const std::uint32_t a = m.alloc(64);
  m.reset_heap();
  const std::uint32_t b = m.alloc(64);
  EXPECT_EQ(a, b);
}

TEST(Machine, HeapExhaustionThrows) {
  kernels::Machine m = kernels::make_mpn_machine();
  EXPECT_THROW(m.alloc(64u << 20), std::runtime_error);
}

TEST(Machine, TooManyArgsRejected) {
  kernels::Machine m = kernels::make_mpn_machine();
  EXPECT_THROW(m.call("mpn_cmp", {1, 2, 3, 4, 5, 6, 7, 8, 9}),
               std::invalid_argument);
}

TEST(Machine, WordMarshalling) {
  kernels::Machine m = kernels::make_mpn_machine();
  const std::vector<std::uint32_t> words = {1, 0xffffffffu, 42};
  const std::uint32_t addr = m.alloc_words(words);
  EXPECT_EQ(m.read_words(addr, 3), words);
  m.write_u32(addr + 4, 7);
  EXPECT_EQ(m.read_u32(addr + 4), 7u);
}

}  // namespace
}  // namespace wsp
