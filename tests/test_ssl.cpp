// Functional SSL-style channel: handshake, record protection across all
// cipher suites, tamper detection, and the transaction cost model.
#include <gtest/gtest.h>

#include "ssl/ssl.h"
#include "ssl/workload.h"

namespace wsp {
namespace {

using ssl::Cipher;
using ssl::perform_handshake;

const rsa::PrivateKey& server_key() {
  static const rsa::PrivateKey key = [] {
    Rng rng(431);
    return rsa::generate_key(512, rng);
  }();
  return key;
}

class SslCipherTest : public ::testing::TestWithParam<Cipher> {};

TEST_P(SslCipherTest, HandshakeAndBidirectionalTransfer) {
  Rng rng(432);
  ModexpEngine client_engine{ModexpConfig{}};
  ModexpEngine server_engine{ModexpConfig{}};
  auto hs = perform_handshake(server_key(), GetParam(), client_engine,
                              server_engine, rng);
  EXPECT_EQ(hs.master_secret.size(), 48u);
  EXPECT_GT(hs.handshake_bytes, 100u);

  const std::vector<std::uint8_t> req = {'G', 'E', 'T', ' ', '/'};
  const auto wire1 = hs.client_write.seal(req);
  EXPECT_NE(wire1, req);
  EXPECT_EQ(hs.client_write.open(wire1), req);

  const auto resp = Rng(433).bytes(3000);
  const auto wire2 = hs.server_write.seal(resp);
  EXPECT_EQ(hs.server_write.open(wire2), resp);
}

TEST_P(SslCipherTest, SequencedRecordsDecryptInOrder) {
  Rng rng(434);
  ModexpEngine ce{ModexpConfig{}}, se{ModexpConfig{}};
  auto hs = perform_handshake(server_key(), GetParam(), ce, se, rng);
  std::vector<std::vector<std::uint8_t>> wires;
  for (int i = 0; i < 5; ++i) {
    wires.push_back(hs.client_write.seal({static_cast<std::uint8_t>(i), 42}));
  }
  for (int i = 0; i < 5; ++i) {
    const auto p = hs.client_write.open(wires[static_cast<std::size_t>(i)]);
    EXPECT_EQ(p[0], i);
  }
}

TEST_P(SslCipherTest, TamperedRecordRejected) {
  Rng rng(435);
  ModexpEngine ce{ModexpConfig{}}, se{ModexpConfig{}};
  auto hs = perform_handshake(server_key(), GetParam(), ce, se, rng);
  auto wire = hs.client_write.seal({1, 2, 3, 4, 5, 6, 7, 8});
  wire[2] ^= 0x80;
  EXPECT_THROW(hs.client_write.open(wire), std::runtime_error);
}

// Regression for the MAC timing side-channel fix: a forged record whose
// length is valid but whose MAC bytes differ (here: the last wire byte,
// which under RC4 maps 1:1 onto the last MAC byte) must be rejected by the
// constant-time comparison — including when only the final byte differs,
// the case an early-exit compare leaks fastest.
TEST(SslCtCompare, MacOnlyForgeryRejected) {
  Rng rng(436);
  ModexpEngine ce{ModexpConfig{}}, se{ModexpConfig{}};
  auto hs = perform_handshake(server_key(), Cipher::kRc4, ce, se, rng);
  auto wire = hs.client_write.seal({9, 9, 9, 9});
  wire.back() ^= 0x01;  // payload intact, MAC tail flipped
  EXPECT_THROW(hs.client_write.open(wire), std::runtime_error);
}

TEST(SslCipherProfile, MatchesSuiteKeySizes) {
  EXPECT_EQ(ssl::cipher_profile(Cipher::kTripleDesCbc).key_len, 24u);
  EXPECT_EQ(ssl::cipher_profile(Cipher::kTripleDesCbc).iv_len, 8u);
  EXPECT_EQ(ssl::cipher_profile(Cipher::kAes128Cbc).key_len, 16u);
  EXPECT_EQ(ssl::cipher_profile(Cipher::kAes128Cbc).iv_len, 16u);
  EXPECT_EQ(ssl::cipher_profile(Cipher::kRc4).key_len, 16u);
  EXPECT_EQ(ssl::cipher_profile(Cipher::kRc4).iv_len, 0u);
}

INSTANTIATE_TEST_SUITE_P(Ciphers, SslCipherTest,
                         ::testing::Values(Cipher::kTripleDesCbc,
                                           Cipher::kAes128Cbc, Cipher::kRc4),
                         [](const ::testing::TestParamInfo<Cipher>& info) {
                           switch (info.param) {
                             case Cipher::kTripleDesCbc: return "des3";
                             case Cipher::kAes128Cbc: return "aes";
                             case Cipher::kRc4: return "rc4";
                           }
                           return "?";
                         });

TEST(SslKdf, DeterministicAndLengthExact) {
  const std::vector<std::uint8_t> secret(48, 0x11), r1(32, 0x22), r2(32, 0x33);
  const auto a = ssl::kdf_ssl3(secret, r1, r2, 104);
  const auto b = ssl::kdf_ssl3(secret, r1, r2, 104);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 104u);
  // Different randoms must give different keys.
  EXPECT_NE(a, ssl::kdf_ssl3(secret, r2, r1, 104));
}

TEST(SslWorkload, BreakdownShiftsWithTransactionSize) {
  ssl::PlatformCosts base = ssl::misc_cost_defaults();
  base.rsa_private_cycles = 60e6;
  base.rsa_public_cycles = 1e6;
  base.symmetric_cycles_per_byte = 1400.0;
  const auto small = ssl::transaction_cost(base, 1024);
  const auto large = ssl::transaction_cost(base, 32 * 1024);
  EXPECT_GT(small.public_key_fraction(), large.public_key_fraction());
  EXPECT_LT(small.symmetric_fraction(), large.symmetric_fraction());
  EXPECT_NEAR(small.public_key_fraction() + small.symmetric_fraction() +
                  small.misc_fraction(),
              1.0, 1e-9);
}

TEST(SslWorkload, SpeedupDecreasesWithSizeWhenPkDominatesGains) {
  ssl::PlatformCosts base = ssl::misc_cost_defaults();
  base.rsa_private_cycles = 60e6;
  base.rsa_public_cycles = 1e6;
  base.symmetric_cycles_per_byte = 1400.0;
  ssl::PlatformCosts opt = ssl::misc_cost_defaults();  // misc unchanged
  opt.rsa_private_cycles = 60e6 / 50.0;
  opt.rsa_public_cycles = 1e6 / 10.0;
  opt.symmetric_cycles_per_byte = 1400.0 / 30.0;
  const auto rows =
      ssl::ssl_speedup_table(base, opt, {1024, 4096, 16384, 32768});
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i].speedup, rows[i - 1].speedup)
        << "speedup must fall as unaccelerated misc grows";
  }
  EXPECT_GT(rows.front().speedup, 5.0);
  EXPECT_GT(rows.back().speedup, 1.0);
  const std::string table = ssl::format_speedup_table(rows);
  EXPECT_NE(table.find("1KB"), std::string::npos);
  EXPECT_NE(table.find("X"), std::string::npos);
}

}  // namespace
}  // namespace wsp
