#include <gtest/gtest.h>

#include "support/hex.h"
#include "support/random.h"
#include "support/stats.h"

namespace wsp {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Hex, RoundTrip) {
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0xab, 0xff, 0x7e};
  EXPECT_EQ(to_hex(data), "0001abff7e");
  EXPECT_EQ(from_hex("0001abff7e"), data);
  EXPECT_EQ(from_hex("00 01 ab ff 7e"), data);
}

TEST(Hex, RejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Stats, Summary) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.1180, 1e-3);
}

TEST(Stats, SolveLinearSystem) {
  // 2x + y = 5; x - y = 1 -> x = 2, y = 1.
  const auto x = solve_linear({{2, 1}, {1, -1}}, {5, 1});
  EXPECT_NEAR(x[0], 2.0, 1e-9);
  EXPECT_NEAR(x[1], 1.0, 1e-9);
}

TEST(Stats, SolveSingularThrows) {
  EXPECT_THROW(solve_linear({{1, 2}, {2, 4}}, {1, 2}), std::runtime_error);
}

TEST(Stats, LeastSquaresRecoversLine) {
  // y = 3 + 2n sampled exactly.
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  for (int n = 1; n <= 20; ++n) {
    X.push_back({1.0, static_cast<double>(n)});
    y.push_back(3.0 + 2.0 * n);
  }
  const auto c = least_squares(X, y);
  EXPECT_NEAR(c[0], 3.0, 1e-6);
  EXPECT_NEAR(c[1], 2.0, 1e-6);
}

TEST(Stats, RSquaredPerfectFit) {
  EXPECT_DOUBLE_EQ(r_squared({1, 2, 3}, {1, 2, 3}), 1.0);
}

TEST(Stats, MeanAbsPctError) {
  EXPECT_NEAR(mean_abs_pct_error({110, 90}, {100, 100}), 10.0, 1e-9);
}

TEST(Stats, MeanAbsPctErrorSkipsZeroObservations) {
  // A zero observation has no defined percentage error; it is skipped and
  // the mean is taken over the remaining points only.
  EXPECT_NEAR(mean_abs_pct_error({110, 5, 90}, {100, 0, 100}), 10.0, 1e-9);
  // All observations zero: nothing to average — defined as 0, not NaN.
  EXPECT_EQ(mean_abs_pct_error({1, 2}, {0, 0}), 0.0);
  EXPECT_EQ(mean_abs_pct_error({}, {}), 0.0);
}

TEST(Stats, MeanAbsPctErrorSizeMismatchUsesCommonPrefix) {
  // Mismatched lengths are tolerated: only the overlapping prefix counts.
  EXPECT_NEAR(mean_abs_pct_error({110, 90, 50}, {100, 100}), 10.0, 1e-9);
  EXPECT_NEAR(mean_abs_pct_error({110}, {100, 100}), 10.0, 1e-9);
  EXPECT_EQ(mean_abs_pct_error({1, 2, 3}, {}), 0.0);
}

TEST(Stats, SolveSingular3x3Throws) {
  // Row 2 = row 0 + row 1: rank-deficient even though no row is zero.
  EXPECT_THROW(solve_linear({{1, 2, 3}, {4, 5, 6}, {5, 7, 9}}, {1, 2, 3}),
               std::runtime_error);
  EXPECT_THROW(solve_linear({{0}}, {1}), std::runtime_error);
}

}  // namespace
}  // namespace wsp
