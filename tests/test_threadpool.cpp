// Thread-pool subsystem behind the parallel exploration engine: coverage,
// deterministic result order, exception propagation, reuse, and a
// contention smoke test (run under TSan via -DWSP_SANITIZE=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/threadpool.h"

namespace wsp {
namespace {

TEST(ThreadPool, HardwareThreadsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ThreadPool, ClampsToOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  std::atomic<int> count{0};
  ThreadPool pool(4);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 5, 5, [](std::size_t) { FAIL() << "must not run"; });
  parallel_for(pool, 7, 3, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelMapPreservesItemOrder) {
  std::vector<int> items(257);
  std::iota(items.begin(), items.end(), 0);
  const auto serial = parallel_map(1u, items, [](const int& x) { return 3 * x + 1; });
  ThreadPool pool(4);
  const auto parallel = parallel_map(pool, items, [](const int& x) { return 3 * x + 1; });
  EXPECT_EQ(parallel, serial);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [](std::size_t i) {
                              if (i == 37) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // The pool stays usable after a failed loop.
  std::atomic<int> count{0};
  parallel_for(pool, 0, 10, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ConvenienceOverloadMatchesInlineExecution) {
  std::vector<double> items = {1.5, -2.0, 8.25, 0.0, 19.5};
  const auto inline_out = parallel_map(1u, items, [](const double& x) { return x * x; });
  const auto pooled_out = parallel_map(3u, items, [](const double& x) { return x * x; });
  EXPECT_EQ(inline_out, pooled_out);
}

TEST(ThreadPool, BackToBackLoopsReuseWorkers) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<long> sum{0};
    parallel_for(pool, 0, 64, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 64L * 63 / 2);
  }
}

}  // namespace
}  // namespace wsp
