// Tier-2 tests for the observability layer (src/support/trace.*): span
// balance, counter monotonicity, Chrome-trace schema validity, empty-trace
// emission, and structural determinism of traced workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <map>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "kernels/aes_kernel.h"
#include "ssl/ssl.h"
#include "support/json.h"
#include "support/random.h"
#include "support/threadpool.h"
#include "support/trace.h"

namespace wsp {
namespace {

#if WSP_TRACE_ENABLED

const rsa::PrivateKey& server_key() {
  static const rsa::PrivateKey key = [] {
    Rng rng(900);
    return rsa::generate_key(512, rng);
  }();
  return key;
}

std::vector<trace::Event> traced_ssl_session(std::uint64_t seed) {
  trace::start(trace::Clock::kLogical);
  Rng rng(seed);
  ModexpEngine ce{ModexpConfig{}}, se{ModexpConfig{}};
  auto hs = ssl::perform_handshake(server_key(), ssl::Cipher::kRc4, ce, se, rng);
  const auto payload = rng.bytes(512);
  const auto record = hs.client_write.seal(payload);
  const auto back = hs.client_write.open(record);
  EXPECT_EQ(back, payload);
  return trace::stop();
}

TEST(Trace, SessionCollectsAndStops) {
  trace::start();
  EXPECT_TRUE(trace::enabled());
  trace::begin("t", "outer");
  trace::counter("t", "n", 1.0);
  trace::end("t", "outer");
  const auto events = trace::stop();
  EXPECT_FALSE(trace::enabled());
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].phase, trace::Phase::kBegin);
  EXPECT_EQ(events[1].phase, trace::Phase::kCounter);
  EXPECT_EQ(events[1].value, 1.0);
  EXPECT_EQ(events[2].phase, trace::Phase::kEnd);
}

TEST(Trace, NoCollectionWithoutSession) {
  trace::begin("t", "ignored");
  trace::end("t", "ignored");
  trace::start();
  const auto events = trace::stop();
  EXPECT_TRUE(events.empty());
}

TEST(Trace, SpanSkipsEndWhenSessionStopsMidway) {
  // A Span armed while no session is active must not emit a dangling E.
  trace::Span idle("t", "idle");
  trace::start();
  const auto events = trace::stop();
  EXPECT_TRUE(events.empty());
}

TEST(Trace, NestedSpansBalancePerThread) {
  const auto events = traced_ssl_session(901);
  ASSERT_FALSE(events.empty());
  // Every (domain, tid) stream must open/close spans LIFO and end balanced.
  std::map<std::pair<bool, std::uint32_t>, std::vector<std::string>> stacks;
  for (const auto& e : events) {
    auto& stack = stacks[{e.sim_domain, e.tid}];
    if (e.phase == trace::Phase::kBegin) {
      stack.push_back(e.name);
    } else if (e.phase == trace::Phase::kEnd) {
      ASSERT_FALSE(stack.empty()) << "unmatched E for " << e.name;
      EXPECT_EQ(stack.back(), e.name);
      stack.pop_back();
    }
  }
  for (const auto& [key, stack] : stacks) {
    EXPECT_TRUE(stack.empty())
        << stack.size() << " unclosed span(s), e.g. " << stack.back();
  }
}

TEST(Trace, LogicalClockTimestampsMonotonic) {
  const auto events = traced_ssl_session(902);
  std::uint64_t last = 0;
  for (const auto& e : events) {
    if (e.sim_domain) continue;  // sim timestamps live on their own clock
    EXPECT_GE(e.ts, last);
    last = e.ts;
  }
}

TEST(Trace, SimCounterMonotonicity) {
  // Cycle/retire counters from one simulated machine never decrease.
  trace::start(trace::Clock::kLogical);
  kernels::Machine m = kernels::make_aes_machine(kernels::AesKernelVariant::kBase);
  kernels::AesKernel k(m, kernels::AesKernelVariant::kBase);
  Rng rng(903);
  k.set_key(rng.bytes(16));
  k.encrypt_ecb(rng.bytes(64));
  const auto events = trace::stop();
  std::map<std::string, double> last;
  bool saw_sim_counter = false;
  for (const auto& e : events) {
    if (!e.sim_domain || e.phase != trace::Phase::kCounter) continue;
    if (e.name != "instret" && e.name.rfind("cache", 1) == std::string::npos)
      continue;
    saw_sim_counter = true;
    auto it = last.find(e.name);
    if (it != last.end()) {
      EXPECT_GE(e.value, it->second) << e.name;
    }
    last[e.name] = e.value;
  }
  EXPECT_TRUE(saw_sim_counter);
}

// Structural key of one event with thread id and timestamp erased — what a
// trace must preserve when only the worker count changes.
using StructKey = std::tuple<int, bool, std::string, std::string, std::uint64_t>;

std::vector<StructKey> thread_invariant_keys(
    const std::vector<trace::Event>& events) {
  std::vector<StructKey> keys;
  for (const auto& e : events) {
    // Pool-occupancy counters legitimately depend on the worker count.
    if (std::string_view(e.category) == "threadpool") continue;
    keys.emplace_back(static_cast<int>(e.phase), e.sim_domain, e.category,
                      e.name, std::bit_cast<std::uint64_t>(e.value));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(Trace, EventMultisetIndependentOfThreadCount) {
  // The same work items traced under --threads 1 (inline) and a real pool
  // must produce the same event multiset: only tids and timestamps may move.
  const std::vector<std::uint64_t> seeds = {910, 911, 912, 913};
  auto run = [&](unsigned threads) {
    trace::start(trace::Clock::kLogical);
    parallel_map(threads, seeds, [](std::uint64_t seed) {
      kernels::Machine m =
          kernels::make_aes_machine(kernels::AesKernelVariant::kBase);
      kernels::AesKernel k(m, kernels::AesKernelVariant::kBase);
      Rng rng(seed);
      k.set_key(rng.bytes(16));
      return k.encrypt_ecb(rng.bytes(32));
    });
    return trace::stop();
  };
  const auto serial = thread_invariant_keys(run(1));
  const auto pooled = thread_invariant_keys(run(3));
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, pooled);
}

TEST(Trace, StructuralDigestDeterministicAcrossRuns) {
  const auto a = traced_ssl_session(904);
  const auto b = traced_ssl_session(904);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(trace::structural_digest(a), trace::structural_digest(b));
  // A structurally different workload (an extra record = extra span pair)
  // must hash differently.  Note a *different seed alone* hashes equal:
  // the digest deliberately covers structure, not data or timing.
  trace::start(trace::Clock::kLogical);
  Rng rng(904);
  ModexpEngine ce{ModexpConfig{}}, se{ModexpConfig{}};
  auto hs = ssl::perform_handshake(server_key(), ssl::Cipher::kRc4, ce, se, rng);
  const auto payload = rng.bytes(512);
  hs.client_write.open(hs.client_write.seal(payload));
  hs.client_write.open(hs.client_write.seal(payload));  // the extra record
  const auto c = trace::stop();
  EXPECT_NE(trace::structural_digest(a), trace::structural_digest(c));
}

#endif  // WSP_TRACE_ENABLED

// --- Chrome-trace export (available in all build flavours) -----------------

TEST(TraceJson, EmptyTraceIsSchemaValid) {
  const std::string text = trace::to_chrome_json({});
  const auto doc = json::Value::parse(text);
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.has("displayTimeUnit"));
  ASSERT_TRUE(doc.at("traceEvents").is_array());
  // Only the two process_name metadata records.
  ASSERT_EQ(doc.at("traceEvents").size(), 2u);
  for (const auto& e : doc.at("traceEvents").items()) {
    EXPECT_EQ(e.at("ph").as_string(), "M");
    EXPECT_EQ(e.at("name").as_string(), "process_name");
  }
}

TEST(TraceJson, EventSchemaFields) {
  std::vector<trace::Event> events;
  trace::Event b;
  b.phase = trace::Phase::kBegin;
  b.category = "cat";
  b.name = "span \"quoted\"";
  b.ts = 10;
  events.push_back(b);
  trace::Event c = b;
  c.phase = trace::Phase::kCounter;
  c.name = "depth";
  c.value = 3.0;
  c.sim_domain = true;
  c.ts = 1234;
  events.push_back(c);
  trace::Event e = b;
  e.phase = trace::Phase::kEnd;
  e.ts = 20;
  events.push_back(e);

  const auto doc = json::Value::parse(trace::to_chrome_json(events));
  const auto& arr = doc.at("traceEvents").items();
  ASSERT_EQ(arr.size(), 5u);  // 2 metadata + 3 events
  const auto& jb = arr[2];
  EXPECT_EQ(jb.at("ph").as_string(), "B");
  EXPECT_EQ(jb.at("name").as_string(), "span \"quoted\"");
  EXPECT_EQ(jb.at("cat").as_string(), "cat");
  EXPECT_EQ(jb.at("pid").as_number(), 1);  // host domain
  EXPECT_EQ(jb.at("ts").as_number(), 10);
  const auto& jc = arr[3];
  EXPECT_EQ(jc.at("ph").as_string(), "C");
  EXPECT_EQ(jc.at("pid").as_number(), 2);  // sim domain
  EXPECT_EQ(jc.at("ts").as_number(), 1234);
  EXPECT_EQ(jc.at("args").at("value").as_number(), 3.0);
  const auto& je = arr[4];
  EXPECT_EQ(je.at("ph").as_string(), "E");
}

TEST(TraceJson, DigestIgnoresTimestamps) {
  std::vector<trace::Event> a, b;
  trace::Event e;
  e.phase = trace::Phase::kInstant;
  e.category = "c";
  e.name = "x";
  e.ts = 1;
  a.push_back(e);
  e.ts = 99999;
  b.push_back(e);
  EXPECT_EQ(trace::structural_digest(a), trace::structural_digest(b));
  b[0].name = "y";
  EXPECT_NE(trace::structural_digest(a), trace::structural_digest(b));
}

}  // namespace
}  // namespace wsp
