#!/usr/bin/env sh
# Sanitizer gate.
#   1. ASan/UBSan over the tier-1 correctness core (now including the server
#      lifecycle + fault/recovery tests), the observability tests, and the
#      server determinism + overload/chaos-soak suites (bounded queue memory
#      under over-admission, no session leaks under fault injection).
#   2. A short TSan pass over the record scheduler: the determinism and
#      chaos tests drive the sharded session table, batched scheduler and
#      fault-containment path from multiple worker threads, which is
#      exactly the surface a data race would hit.
#   3. A 100k-session `scale` smoke under both sanitizer builds: the slab
#      arena, lock-free MPSC rings and pump handoff at real volume.
#   4. Batched data-plane smokes: the chaos scenario at --batch-lanes 8
#      under both builds (multi-buffer kernels + cohort staging + repair
#      fallback), plus the lanes-invariance tests in ServerBatchDeterminism.
#   5. Scenario-compiler smokes: `wspc check` over every example .wsp file
#      under ASan/UBSan, and the flash-crowd program executed end to end
#      under both sanitizer builds (docs/scenarios.md).
#   6. Crash -> restore smokes (docs/recovery.md): the crash-storm scenario
#      recorded with checkpoints at 1 thread until its scheduled kill
#      (wspc exit 3), then resumed at 8 threads from the torn trace, under
#      both sanitizer builds; plus the CheckpointDeterminism suites and the
#      Sec. 4.3 explore-sweep regression gate.
#
# Usage: tools/ci/sanitize.sh [build-dir]   (default: build-asan; the TSan
# build lands next to it with a -tsan suffix)
set -eu

BUILD_DIR="${1:-build-asan}"
SRC_DIR="$(cd "$(dirname "$0")/../.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DWSP_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$JOBS"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

(
  cd "$BUILD_DIR"
  ctest -L tier1 --output-on-failure
  ctest -R 'Trace|TraceJson|Json\.|BenchFlags|BenchJson|BenchServerSchema|BenchGate' \
        --output-on-failure
  ctest -R 'ServerDeterminism|ServerSoak|ServerChaos|ServerBatch|TamperRecovery' \
        --output-on-failure
  # Crash-fault tolerance: the crash -> restore -> continue determinism
  # sweep across threads x lanes, benign and chaos (docs/recovery.md).
  ctest -R 'Checkpoint' --output-on-failure
  # Million-session data-plane primitives (slab arena, MPSC ring, sharded
  # table) plus the concurrent churn/ring soaks.
  ctest -R 'Slab\.|MpscRing|ServerTable|ServerScaleSoak' --output-on-failure
)

# Chaos soak under ASan/UBSan: the full fault mix through the real repair
# ladder, gated on the session-leak invariant (bench_server exits nonzero
# if completed + aborted != admitted).  --record-dir leaves wsp-replay-v1
# traces behind; replaying the chaos one at a different thread count drives
# the whole record -> decode -> re-run -> verify path under the sanitizers.
"$BUILD_DIR"/bench/bench_server --scenario chaos --threads 4 \
    --record-dir "$BUILD_DIR" --outdir "$BUILD_DIR" > /dev/null
"$BUILD_DIR"/tools/replay "$BUILD_DIR"/REPLAY_server_chaos.wspr --threads 2 \
    > /dev/null
echo "sanitize.sh: chaos run replayed bit-exactly at a different --threads"

# Scale smoke under ASan/UBSan: 100k resumed sessions through the slab
# table and MPSC rings, gated on the same leak invariant.  This is the
# million-session data plane at enough volume for heap bugs to surface.
"$BUILD_DIR"/bench/bench_server --scenario scale --threads 4 \
    --outdir "$BUILD_DIR" > /dev/null
echo "sanitize.sh: 100k-session scale run clean under ASan/UBSan"

# Batched-plane chaos smoke under ASan/UBSan: cohort staging, the
# multi-buffer CBC kernels and the batched->scalar repair fallback, with
# lane-crossing pointer bugs exactly what ASan would catch.
"$BUILD_DIR"/bench/bench_server --scenario chaos --threads 4 --batch-lanes 8 \
    --outdir "$BUILD_DIR" > /dev/null
echo "sanitize.sh: chaos run at --batch-lanes 8 clean under ASan/UBSan"

# Scenario-compiler smoke under ASan/UBSan: every example program must
# compile cleanly, and the flash-crowd program runs end to end (multi-phase
# generator + resumption surge + per-phase fault overlay) gated on the same
# leak invariant via wspc's nonzero exit on failure.
"$BUILD_DIR"/tools/wspc check "$SRC_DIR"/examples/scenarios/*.wsp > /dev/null
"$BUILD_DIR"/tools/wspc run "$SRC_DIR"/examples/scenarios/flash_crowd.wsp \
    --threads 4 > /dev/null
echo "sanitize.sh: example scenarios compile; flash crowd clean under ASan/UBSan"

# Crash -> restore smoke under ASan/UBSan: record the crash-storm scenario
# with checkpoints at 1 thread until the scheduled kill fires (wspc exits 3
# on a CrashFault, anything else is a failure), then resume the torn trace
# at 8 threads — the quiesce/restore machinery with the leak invariant
# gated by wspc's exit code (docs/recovery.md).
rc=0
"$BUILD_DIR"/tools/wspc run "$SRC_DIR"/examples/scenarios/crash_storm.wsp \
    --threads 1 --record "$BUILD_DIR"/crash_storm.wspr \
    --checkpoint-every 2000000 > /dev/null || rc=$?
[ "$rc" -eq 3 ] || { echo "crash_storm: expected exit 3, got $rc"; exit 1; }
"$BUILD_DIR"/tools/wspc run "$SRC_DIR"/examples/scenarios/crash_storm.wsp \
    --threads 8 --resume-from "$BUILD_DIR"/crash_storm.wspr > /dev/null
echo "sanitize.sh: crash-storm checkpoint/resume clean under ASan/UBSan"

# Bench regression gate (docs/benchmarks.md): the server section against
# the committed baselines.  Sanitizers change wall time, never the cycles
# metrics, so the gate must pass here too.
"$BUILD_DIR"/bench/bench_report --check --only server > /dev/null
echo "sanitize.sh: bench_report --check (server) passed against baselines"

# Sec. 4.3 explore sweep gate: the enumerated candidate space and the
# winning configuration's modeled cycles against the committed baseline
# (BENCH_sec43_explore.json) — a selection-logic regression changes
# `configs` or `best_avg_cycles` and fails here.
"$BUILD_DIR"/bench/bench_report --check --with-explore --only sec43_explore \
    > /dev/null
echo "sanitize.sh: bench_report --check --with-explore passed against baselines"

echo "sanitize.sh: tier1 + observability + server/chaos tests clean under ASan/UBSan"

TSAN_DIR="${BUILD_DIR}-tsan"
cmake -B "$TSAN_DIR" -S "$SRC_DIR" -DWSP_SANITIZE=thread
cmake --build "$TSAN_DIR" -j "$JOBS" \
      --target test_server test_server_faults test_server_determinism \
               test_scenario_determinism test_threadpool test_ring_arena \
               test_checkpoint_determinism bench_server wspc replay
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

(
  cd "$TSAN_DIR"
  # ServerScheduler includes the fault-containment tests (a poisoned task
  # racing the pump's failure accounting is the interesting interleaving);
  # ServerChaos runs the whole engine under fault injection.
  ctest -R 'ServerScheduler|ServerEngine|ServerDeterminism|ServerSoak|ServerChaos|ServerBatch|ServerSessionFaults|ServerTable|MpscRing|ServerScaleSoak|ThreadPool|ScenarioDeterminism|CheckpointDeterminism' \
        --output-on-failure
)

# Scale smoke under TSan: the lock-free ring push/pop path, the Dekker
# pump-handoff fence and the table's shard locks at 100k-session volume.
"$TSAN_DIR"/bench/bench_server --scenario scale --threads 4 \
    --outdir "$TSAN_DIR" > /dev/null
echo "sanitize.sh: 100k-session scale run clean under TSan"

# Batched-plane chaos smoke under TSan: per-shard cohorts on concurrent
# workers, each with a private dispatcher — the cross-thread surface is the
# scheduler handoff plus the engine's batched_records accumulation.
"$TSAN_DIR"/bench/bench_server --scenario chaos --threads 4 --batch-lanes 8 \
    --outdir "$TSAN_DIR" > /dev/null
echo "sanitize.sh: chaos run at --batch-lanes 8 clean under TSan"

# Flash-crowd scenario smoke under TSan: three phases' worth of arrivals —
# including the resumption surge — pushed through the sharded table and
# scheduler from 4 worker threads.
"$TSAN_DIR"/tools/wspc run "$SRC_DIR"/examples/scenarios/flash_crowd.wsp \
    --threads 4 > /dev/null
echo "sanitize.sh: flash-crowd scenario clean under TSan"

# Crash -> restore smoke under TSan: checkpoint at 1 thread, resume at 8 —
# the quiesce barrier is a full scheduler drain racing the worker pool, and
# the restore re-admits parked cohorts across 8 workers; then replay the
# torn trace's resume path through the standalone replay tool too.
rc=0
"$TSAN_DIR"/tools/wspc run "$SRC_DIR"/examples/scenarios/crash_storm.wsp \
    --threads 1 --record "$TSAN_DIR"/crash_storm.wspr \
    --checkpoint-every 2000000 > /dev/null || rc=$?
[ "$rc" -eq 3 ] || { echo "crash_storm: expected exit 3, got $rc"; exit 1; }
"$TSAN_DIR"/tools/wspc run "$SRC_DIR"/examples/scenarios/crash_storm.wsp \
    --threads 8 --resume-from "$TSAN_DIR"/crash_storm.wspr > /dev/null
"$TSAN_DIR"/tools/replay "$TSAN_DIR"/crash_storm.wspr --resume --threads 8 \
    > /dev/null
echo "sanitize.sh: crash-storm checkpoint/resume clean under TSan"

echo "sanitize.sh: scheduler/threadpool/chaos tests clean under TSan"
