#!/usr/bin/env sh
# ASan/UBSan gate: builds the repo with -fsanitize=address,undefined and runs
# the tier-1 correctness core plus the observability tests.
#
# Usage: tools/ci/sanitize.sh [build-dir]   (default: build-asan)
set -eu

BUILD_DIR="${1:-build-asan}"
SRC_DIR="$(cd "$(dirname "$0")/../.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DWSP_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$JOBS"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

cd "$BUILD_DIR"
ctest -L tier1 --output-on-failure
ctest -R 'Trace|TraceJson|Json\.|BenchFlags|BenchJson' --output-on-failure

echo "sanitize.sh: tier1 + observability tests clean under ASan/UBSan"
