// Replays a recorded engine run (server/record.h, format wsp-replay-v1) and
// verifies the outcome bit-exactly: every deterministic RunReport field,
// per-shard event digest and per-session event must match the recording.
// Because the engine's determinism contract excludes thread count, the
// replay may run at any --threads value — replaying a chaos failure
// recorded at --threads 8 under a single thread (or a debugger) is the
// point of the format.
//
// Crash recovery (docs/recovery.md): --resume scans a possibly-torn trace —
// one a crashed run left without its end tag, or with a partially-written
// checkpoint chunk at the tail — restores the last valid checkpoint and
// continues the run.  For a complete trace the resumed outcome is verified
// against the recording just like a plain replay; for a torn trace there is
// no recorded outcome, so the resumed report is printed instead.
//
// Usage: replay TRACE_FILE [--threads N] [--dump] [--resume]
//   --threads N   re-run with N worker threads (default: as recorded)
//   --dump        print the recorded header/summary, do not re-run
//   --resume      crash recovery: restore the last valid checkpoint
//
// Exit codes: 0 replay/resume verified, 1 mismatch, 2 unreadable/invalid
// trace (for --resume: damage before the input chunks completed).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/record.h"
#include "server/traffic.h"
#include "ssl/ssl.h"

namespace {

using namespace wsp;

void dump_record(const server::RunRecord& rec) {
  const server::RunReport& r = rec.report;
  std::printf("wsp-replay-v1 run record\n");
  std::printf("  recorded at git_rev %s on %u threads\n", rec.git_rev.c_str(),
              rec.recorded_threads);
  std::printf("  scenario: seed %llu, %zu sessions, %s, load %.2f\n",
              static_cast<unsigned long long>(rec.scenario.seed),
              rec.scenario.sessions,
              rec.scenario.model == server::ArrivalModel::kOpenLoop
                  ? "open loop"
                  : "closed loop",
              rec.scenario.offered_load);
  std::printf("  ciphers:");
  for (ssl::Cipher c : rec.scenario.ciphers) {
    std::printf(" %s", ssl::to_string(c));
  }
  std::printf("\n");
  if (rec.scenario.phased()) {
    std::printf("  program: %zu phases, %zu total sessions\n",
                rec.scenario.phases.size(), rec.scenario.total_sessions());
    for (const server::TrafficPhase& ph : rec.scenario.phases) {
      std::printf("    phase '%s': %zu sessions, %s, %s%.2f, resume %.2f%s\n",
                  ph.name.c_str(), ph.sessions,
                  ph.model == server::ArrivalModel::kOpenLoop ? "open loop"
                                                              : "closed loop",
                  ph.model == server::ArrivalModel::kOpenLoop ? "load "
                                                              : "users ",
                  ph.model == server::ArrivalModel::kOpenLoop
                      ? ph.offered_load
                      : static_cast<double>(ph.users),
                  ph.resume_fraction, ph.faults ? ", fault overlay" : "");
    }
  }
  if (!rec.scenario_source.empty()) {
    std::printf("  scenario source (.wsp, %zu bytes):\n",
                rec.scenario_source.size());
    // Indent each line so the embedded text reads as a quoted block.
    std::size_t start = 0;
    while (start < rec.scenario_source.size()) {
      std::size_t end = rec.scenario_source.find('\n', start);
      if (end == std::string::npos) end = rec.scenario_source.size();
      std::printf("    %.*s\n", static_cast<int>(end - start),
                  rec.scenario_source.c_str() + start);
      start = end + 1;
    }
  } else {
    std::printf("  scenario source: none (legacy trace or hand-built "
                "scenario)\n");
  }
  std::printf("  engine: %u shards, queue %zu, batch %zu, rsa %zu, "
              "degrade depth %zu%s\n",
              rec.config.shards, rec.config.queue_capacity,
              rec.config.record_batch, rec.config.rsa_bits,
              rec.config.degrade_depth,
              rec.config.faults.enabled() ? ", faults on" : "");
  std::printf("  outcome: offered %llu, admitted %llu, completed %llu, "
              "aborted %llu, dropped %llu\n",
              static_cast<unsigned long long>(r.offered),
              static_cast<unsigned long long>(r.admitted),
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.aborted),
              static_cast<unsigned long long>(r.dropped));
  std::printf("  faults %llu, retried %llu, repaired %llu, shed %llu, "
              "degrade enters %llu\n",
              static_cast<unsigned long long>(r.faults_injected),
              static_cast<unsigned long long>(r.retried),
              static_cast<unsigned long long>(r.repaired),
              static_cast<unsigned long long>(r.shed),
              static_cast<unsigned long long>(r.degrade_enters));
  std::printf("  throughput %.4f sessions/Gcycle, makespan %.1f Mcycles, "
              "bytes digest %08x\n",
              r.throughput_per_gcycle, r.makespan_cycles / 1e6,
              r.bytes_digest);
  std::printf("  %zu session events across %zu shards\n", r.events.size(),
              r.shards.size());
  for (std::size_t s = 0; s < r.shards.size(); ++s) {
    std::printf("    shard %zu: events digest %016llx (%llu sessions)\n", s,
                static_cast<unsigned long long>(r.shards[s].events_digest),
                static_cast<unsigned long long>(r.shards[s].admitted));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  unsigned threads = 0;
  bool dump = false;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dump") {
      dump = true;
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<unsigned>(
          std::strtoul(arg.c_str() + std::strlen("--threads="), nullptr, 10));
    } else if (!arg.empty() && arg[0] != '-' && path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: replay TRACE_FILE [--threads N] [--dump] "
                   "[--resume]\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: replay TRACE_FILE [--threads N] [--dump] "
                 "[--resume]\n");
    return 2;
  }

  if (resume) {
    server::ResumeScan scan;
    try {
      scan = server::scan_trace_for_resume(wsp::replay::read_file(path));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "resume: %s: %s\n", path.c_str(), e.what());
      return 2;
    }
    std::printf("scanned %s: %zu bytes, %zu checkpoint%s, %s\n", path.c_str(),
                scan.scanned_bytes, scan.checkpoints.size(),
                scan.checkpoints.size() == 1 ? "" : "s",
                scan.complete ? "complete trace" : "torn trace");
    if (!scan.tear.empty()) std::printf("  tear: %s\n", scan.tear.c_str());
    if (!scan.checkpoints.empty()) {
      const server::EngineCheckpoint& cp = scan.checkpoints.back();
      std::printf("resuming from checkpoint %llu at virtual cycle %.1f "
                  "(%llu of the run's arrivals already offered) on %u "
                  "threads...\n",
                  static_cast<unsigned long long>(cp.seq), cp.virtual_now,
                  static_cast<unsigned long long>(cp.offered),
                  threads > 0 ? threads : scan.record.recorded_threads);
    } else {
      std::printf("no usable checkpoint; restarting the run from the "
                  "beginning on %u threads...\n",
                  threads > 0 ? threads : scan.record.recorded_threads);
    }
    server::ReplayResult result;
    try {
      result = server::resume_run(scan, threads);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "resume: %s: %s\n", path.c_str(), e.what());
      return 2;
    }
    if (!result.ok()) {
      std::fprintf(stderr, "resume FAILED: %zu mismatches\n",
                   result.mismatches.size());
      for (const std::string& m : result.mismatches) {
        std::fprintf(stderr, "  %s\n", m.c_str());
      }
      return 1;
    }
    const server::RunReport& r = result.report;
    std::printf("resume OK: offered %llu, admitted %llu, completed %llu, "
                "aborted %llu, dropped %llu%s\n",
                static_cast<unsigned long long>(r.offered),
                static_cast<unsigned long long>(r.admitted),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.aborted),
                static_cast<unsigned long long>(r.dropped),
                scan.complete
                    ? " — verified bit-identical against the recording"
                    : " (torn trace: no recorded outcome to verify against)");
    return 0;
  }

  server::RunRecord rec;
  try {
    rec = server::read_run_record_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replay: %s: %s\n", path.c_str(), e.what());
    return 2;
  }

  if (dump) {
    dump_record(rec);
    return 0;
  }

  std::printf("replaying %s (recorded at %s, %zu sessions) on %u threads...\n",
              path.c_str(), rec.git_rev.c_str(), rec.scenario.sessions,
              threads > 0 ? threads : rec.recorded_threads);
  const server::ReplayResult result = server::replay_run(rec, threads);
  if (!result.ok()) {
    std::fprintf(stderr, "replay FAILED: %zu mismatches\n",
                 result.mismatches.size());
    for (const std::string& m : result.mismatches) {
      std::fprintf(stderr, "  %s\n", m.c_str());
    }
    return 1;
  }
  std::printf("replay OK: RunReport, %zu shard digests and %zu session "
              "events bit-identical\n",
              result.report.shards.size(), result.report.events.size());
  return 0;
}
