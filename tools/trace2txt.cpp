// trace2txt — summarize a Chrome-trace JSON file produced by the wsp trace
// layer (`--trace FILE` on any bench binary, or trace::write_chrome_json).
//
// Usage:
//   trace2txt FILE.json [--top N]
//
// Prints, per clock domain (pid 1 "host", pid 2 "xr32-sim-cycles"):
//   * total event count and per-phase breakdown,
//   * the top N span names by inclusive duration (B/E pairs, per tid),
//   * the final and peak value of every counter series.
// Exit status: 0 on success, 1 on I/O or parse errors, 2 on malformed
// traces (unbalanced spans, missing required fields).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "support/json.h"

namespace {

struct SpanStats {
  double total = 0.0;  // inclusive duration, summed over invocations
  std::uint64_t count = 0;
};

struct CounterStats {
  double last = 0.0;
  double peak = 0.0;
  std::uint64_t samples = 0;
};

struct DomainSummary {
  std::map<std::string, std::uint64_t> phase_counts;
  std::map<std::string, SpanStats> spans;        // "cat/name"
  std::map<std::string, CounterStats> counters;  // "cat/name"
  std::uint64_t events = 0;
};

std::string read_file(const char* path, bool& ok) {
  std::FILE* f = std::fopen(path, "rb");
  if (!f) {
    ok = false;
    return {};
  }
  std::string out;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  ok = std::ferror(f) == 0;
  std::fclose(f);
  return out;
}

const char* domain_label(int pid) {
  return pid == 2 ? "xr32-sim-cycles" : "host";
}

const char* unit_label(int pid) { return pid == 2 ? "cycles" : "ns"; }

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  std::size_t top = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (!path) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: trace2txt FILE.json [--top N]\n");
      return 1;
    }
  }
  if (!path) {
    std::fprintf(stderr, "usage: trace2txt FILE.json [--top N]\n");
    return 1;
  }

  bool ok = true;
  const std::string text = read_file(path, ok);
  if (!ok) {
    std::fprintf(stderr, "trace2txt: cannot read %s\n", path);
    return 1;
  }

  wsp::json::Value doc;
  try {
    doc = wsp::json::Value::parse(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace2txt: %s: %s\n", path, e.what());
    return 1;
  }
  if (!doc.is_object() || !doc.has("traceEvents") ||
      !doc.at("traceEvents").is_array()) {
    std::fprintf(stderr, "trace2txt: %s: no traceEvents array\n", path);
    return 2;
  }

  // (pid, tid) -> stack of (key, begin-ts) for B/E pairing.
  std::map<std::pair<int, int>, std::vector<std::pair<std::string, double>>>
      open_spans;
  std::map<int, DomainSummary> domains;
  bool malformed = false;

  for (const auto& e : doc.at("traceEvents").items()) {
    try {
      const std::string& ph = e.at("ph").as_string();
      if (ph == "M") continue;  // metadata
      const int pid = static_cast<int>(e.at("pid").as_number());
      const int tid = static_cast<int>(e.at("tid").as_number());
      const std::string& name = e.at("name").as_string();
      const std::string& cat =
          e.has("cat") ? e.at("cat").as_string() : std::string("?");
      const double ts = e.at("ts").as_number();
      const std::string key = cat + "/" + name;

      DomainSummary& d = domains[pid];
      ++d.events;
      ++d.phase_counts[ph];

      if (ph == "B") {
        open_spans[{pid, tid}].emplace_back(key, ts);
      } else if (ph == "E") {
        auto& stack = open_spans[{pid, tid}];
        if (stack.empty() || stack.back().first != key) {
          std::fprintf(stderr, "trace2txt: unbalanced E event '%s' (pid %d tid %d)\n",
                       key.c_str(), pid, tid);
          malformed = true;
          continue;
        }
        SpanStats& s = d.spans[key];
        s.total += ts - stack.back().second;
        ++s.count;
        stack.pop_back();
      } else if (ph == "C") {
        const double v = e.at("args").at("value").as_number();
        CounterStats& c = d.counters[key];
        c.last = v;
        c.peak = c.samples == 0 ? v : std::max(c.peak, v);
        ++c.samples;
      }
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "trace2txt: malformed event: %s\n", ex.what());
      malformed = true;
    }
  }
  for (const auto& [key, stack] : open_spans) {
    if (!stack.empty()) {
      std::fprintf(stderr,
                   "trace2txt: %zu span(s) never closed (pid %d tid %d), "
                   "e.g. '%s'\n",
                   stack.size(), key.first, key.second,
                   stack.back().first.c_str());
      malformed = true;
    }
  }

  std::printf("%s: %zu event(s), %zu clock domain(s)\n\n", path,
              static_cast<std::size_t>([&] {
                std::uint64_t n = 0;
                for (const auto& [pid, d] : domains) n += d.events;
                return n;
              }()),
              domains.size());

  for (const auto& [pid, d] : domains) {
    std::printf("== %s (pid %d) — %llu events\n", domain_label(pid), pid,
                static_cast<unsigned long long>(d.events));
    std::printf("   phases:");
    for (const auto& [ph, n] : d.phase_counts)
      std::printf(" %s=%llu", ph.c_str(), static_cast<unsigned long long>(n));
    std::printf("\n");

    if (!d.spans.empty()) {
      std::vector<std::pair<std::string, SpanStats>> ranked(d.spans.begin(),
                                                            d.spans.end());
      std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
        return a.second.total > b.second.total;
      });
      std::printf("   top spans by inclusive %s:\n", unit_label(pid));
      for (std::size_t i = 0; i < ranked.size() && i < top; ++i) {
        std::printf("     %12.0f  x%-6llu %s\n", ranked[i].second.total,
                    static_cast<unsigned long long>(ranked[i].second.count),
                    ranked[i].first.c_str());
      }
    }
    if (!d.counters.empty()) {
      std::printf("   counters (last / peak / samples):\n");
      for (const auto& [key, c] : d.counters) {
        std::printf("     %14.0f %14.0f  x%-6llu %s\n", c.last, c.peak,
                    static_cast<unsigned long long>(c.samples), key.c_str());
      }
    }
    std::printf("\n");
  }
  return malformed ? 2 : 0;
}
