// wspc — the .wsp scenario compiler driver (docs/scenarios.md).
//
// Usage:
//   wspc check FILE...          compile only; report the first error per file
//   wspc dump FILE              compile and print the lowered traffic program
//   wspc run FILE [options]     compile and execute on the session engine
//
// `run` options:
//   --threads N     worker threads (default 1)
//   --shards N      service shards (default 4; shapes the virtual model)
//   --lanes N       batch lanes 1..8 (default 1)
//   --queue N       per-shard waiting room (default 64)
//   --rsa BITS      server key size (default 512)
//   --record FILE   write a wsp-replay-v1 recording with the source embedded
//   --checkpoint-every C  append a quiesce-barrier checkpoint to the
//                   recording every C virtual cycles (docs/recovery.md);
//                   requires --record, and C must be positive and finite
//                   (std::invalid_argument -> exit 2 otherwise)
//   --resume-from TRACE   crash recovery: scan TRACE (possibly torn),
//                   restore its last valid checkpoint and continue; the
//                   run comes from the trace's lowered scenario, so FILE is
//                   only compiled to validate it.  Engine shape flags are
//                   ignored (the recorded config wins); --threads applies.
//
// Exit codes: 0 success, 1 compile error / leak / resume mismatch
// (diagnostic on stderr), 2 usage, I/O or argument error, 3 the scenario's
// scheduled crash fault fired — the recording holds the checkpoints written
// so far and `wspc run FILE --resume-from TRACE` (or `replay TRACE
// --resume`) recovers it.  Compile diagnostics carry file:line:col and a
// stable Ennn code — `wspc check` is what tools/ci/sanitize.sh runs over
// examples/scenarios/.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/compile.h"
#include "server/engine.h"
#include "server/record.h"
#include "ssl/ssl.h"

namespace {

using namespace wsp;

int usage() {
  std::fprintf(stderr,
               "usage: wspc check FILE...\n"
               "       wspc dump FILE\n"
               "       wspc run FILE [--threads N] [--shards N] [--lanes N]\n"
               "                     [--queue N] [--rsa BITS] [--record FILE]\n"
               "                     [--checkpoint-every CYCLES]\n"
               "                     [--resume-from TRACE]\n");
  return 2;
}

/// A checkpoint interval must be a positive, finite virtual-cycle count.
double parse_checkpoint_every(const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || !std::isfinite(v) || v <= 0.0) {
    throw std::invalid_argument(
        "--checkpoint-every wants a positive virtual-cycle count, got '" +
        text + "'");
  }
  return v;
}

void dump_phase(const server::TrafficPhase& ph) {
  std::printf("  phase '%s': %zu sessions, %s", ph.name.c_str(), ph.sessions,
              ph.model == server::ArrivalModel::kOpenLoop ? "open loop"
                                                          : "closed loop");
  if (ph.model == server::ArrivalModel::kOpenLoop) {
    std::printf(", load %.3f", ph.offered_load);
  } else {
    std::printf(", %u users, think %.0f cycles", ph.users, ph.think_cycles);
  }
  std::printf(", resume %.2f\n", ph.resume_fraction);
  std::printf("    mix:");
  for (const server::CipherMix& m : ph.cipher_mix) {
    std::printf(" %s:%u", ssl::to_string(m.cipher), m.weight);
  }
  std::printf("\n    sizes:");
  for (const server::SizeMix& m : ph.size_mix) {
    std::printf(" %zu:%u", m.bytes, m.weight);
  }
  std::printf("\n");
  if (ph.faults) {
    std::printf("    faults: flip %.3g, hs-fail %.3g, abort %.3g, stall %.3g"
                " (%.0f cycles), budgets %u/%u, backoff %.0f..%.0f\n",
                ph.faults->wire_flip_rate, ph.faults->handshake_failure_rate,
                ph.faults->abort_rate, ph.faults->stall_rate,
                ph.faults->stall_cycles, ph.faults->record_retry_budget,
                ph.faults->handshake_retry_budget,
                ph.faults->backoff_base_cycles, ph.faults->backoff_cap_cycles);
  }
}

int cmd_check(const std::vector<std::string>& files) {
  int failures = 0;
  for (const std::string& f : files) {
    try {
      scenario::compile_file(f);
      std::printf("%s: OK\n", f.c_str());
    } catch (const scenario::ScenarioError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      ++failures;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wspc: %s\n", e.what());
      return 2;
    }
  }
  return failures == 0 ? 0 : 1;
}

int cmd_dump(const std::string& file) {
  scenario::CompiledScenario compiled;
  try {
    compiled = scenario::compile_file(file);
  } catch (const scenario::ScenarioError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wspc: %s\n", e.what());
    return 2;
  }
  const server::TrafficScenario& sc = compiled.scenario;
  std::printf("scenario '%s': seed %llu, record_bytes %zu, %zu phases, "
              "%zu total sessions\n",
              compiled.name.c_str(),
              static_cast<unsigned long long>(sc.seed), sc.record_bytes,
              sc.phases.size(), sc.total_sessions());
  for (const server::TrafficPhase& ph : sc.phases) dump_phase(ph);
  return 0;
}

int cmd_run(const std::string& file, int argc, char** argv, int i) {
  server::EngineConfig cfg;
  cfg.threads = 1;
  cfg.shards = 4;
  std::string record_path;
  std::string resume_path;
  std::string checkpoint_every_text;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "wspc: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      cfg.threads = static_cast<unsigned>(std::strtoul(next("--threads"), nullptr, 10));
    } else if (arg == "--shards") {
      cfg.shards = static_cast<unsigned>(std::strtoul(next("--shards"), nullptr, 10));
    } else if (arg == "--lanes") {
      cfg.batch_lanes = static_cast<unsigned>(std::strtoul(next("--lanes"), nullptr, 10));
    } else if (arg == "--queue") {
      cfg.queue_capacity = std::strtoul(next("--queue"), nullptr, 10);
    } else if (arg == "--rsa") {
      cfg.rsa_bits = std::strtoul(next("--rsa"), nullptr, 10);
    } else if (arg == "--record") {
      record_path = next("--record");
    } else if (arg == "--checkpoint-every") {
      checkpoint_every_text = next("--checkpoint-every");
    } else if (arg == "--resume-from") {
      resume_path = next("--resume-from");
    } else {
      return usage();
    }
  }
  if (!checkpoint_every_text.empty()) {
    try {
      cfg.checkpoint_every = parse_checkpoint_every(checkpoint_every_text);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "wspc: %s\n", e.what());
      return 2;
    }
    if (record_path.empty()) {
      std::fprintf(stderr, "wspc: --checkpoint-every needs --record "
                           "(checkpoints live in the recording)\n");
      return 2;
    }
  }

  scenario::CompiledScenario compiled;
  try {
    compiled = scenario::compile_file(file);
  } catch (const scenario::ScenarioError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wspc: %s\n", e.what());
    return 2;
  }

  try {
    server::RunReport report;
    if (!resume_path.empty()) {
      // Crash recovery: the run comes from the trace's lowered scenario
      // and recorded config; only --threads applies on top.
      const server::ResumeScan scan =
          server::scan_trace_for_resume(replay::read_file(resume_path));
      std::printf("resuming %s: %zu checkpoint(s), %s%s%s\n",
                  resume_path.c_str(), scan.checkpoints.size(),
                  scan.complete ? "complete trace" : "torn trace",
                  scan.tear.empty() ? "" : "; tear: ", scan.tear.c_str());
      const server::ReplayResult res =
          server::resume_run(scan, cfg.threads);
      if (!res.ok()) {
        std::fprintf(stderr, "wspc: resume diverged from the recording: "
                             "%zu mismatches\n",
                     res.mismatches.size());
        for (const std::string& m : res.mismatches) {
          std::fprintf(stderr, "  %s\n", m.c_str());
        }
        return 1;
      }
      report = res.report;
    } else if (!record_path.empty()) {
      if (cfg.checkpoint_every > 0.0) {
        // Incremental recording: each checkpoint is flushed to the file as
        // the run goes, so a crash leaves a resumable trace behind.
        server::RunRecorder recorder(cfg, compiled.scenario, compiled.source,
                                     record_path);
        try {
          server::Engine engine(recorder.engine_config());
          report = engine.run(compiled.scenario);
        } catch (const server::CrashFault& e) {
          recorder.crash();
          std::fprintf(stderr,
                       "wspc: %s\n  %s holds %zu checkpoint(s); recover "
                       "with `wspc run %s --resume-from %s`\n",
                       e.what(), record_path.c_str(), recorder.checkpoints(),
                       file.c_str(), record_path.c_str());
          return 3;
        }
        if (!recorder.finish(report)) {
          std::fprintf(stderr, "wspc: %s\n", recorder.error().c_str());
          return 2;
        }
        std::printf("recorded %s (%zu checkpoints)\n", record_path.c_str(),
                    recorder.checkpoints());
      } else {
        const server::RunRecord rec =
            server::record_run(cfg, compiled.scenario, compiled.source);
        if (!server::write_run_record_file(rec, record_path)) {
          std::fprintf(stderr, "wspc: cannot write %s\n", record_path.c_str());
          return 2;
        }
        report = rec.report;
        std::printf("recorded %s\n", record_path.c_str());
      }
    } else {
      server::Engine engine(cfg);
      report = engine.run(compiled.scenario);
    }
    std::printf("scenario '%s': offered %llu, admitted %llu, completed %llu, "
                "aborted %llu, dropped %llu\n",
                compiled.name.c_str(),
                static_cast<unsigned long long>(report.offered),
                static_cast<unsigned long long>(report.admitted),
                static_cast<unsigned long long>(report.completed),
                static_cast<unsigned long long>(report.aborted),
                static_cast<unsigned long long>(report.dropped));
    std::printf("  throughput %.4f sessions/Gcycle, makespan %.1f Mcycles, "
                "p99 latency %.1f Kcycles\n",
                report.throughput_per_gcycle, report.makespan_cycles / 1e6,
                report.latency.p99 / 1e3);
    std::printf("  faults %llu, retried %llu, repaired %llu, records %llu, "
                "wire %llu bytes\n",
                static_cast<unsigned long long>(report.faults_injected),
                static_cast<unsigned long long>(report.retried),
                static_cast<unsigned long long>(report.repaired),
                static_cast<unsigned long long>(report.records),
                static_cast<unsigned long long>(report.wire_bytes));
    // Session-leak invariant: every admitted session must reach a terminal
    // state.  A violation is an engine bug, so CI smokes can gate on it.
    if (report.completed + report.aborted != report.admitted) {
      std::fprintf(stderr,
                   "wspc: session leak: admitted %llu != completed %llu + "
                   "aborted %llu\n",
                   static_cast<unsigned long long>(report.admitted),
                   static_cast<unsigned long long>(report.completed),
                   static_cast<unsigned long long>(report.aborted));
      return 1;
    }
    return 0;
  } catch (const server::CrashFault& e) {
    // A crash without --record --checkpoint-every leaves nothing to resume
    // from; the distinct exit code still tells the caller what happened.
    std::fprintf(stderr, "wspc: %s (no recording to resume from)\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wspc: %s\n", e.what());
    return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  if (cmd == "check") {
    std::vector<std::string> files;
    for (int i = 2; i < argc; ++i) files.emplace_back(argv[i]);
    return cmd_check(files);
  }
  if (cmd == "dump") {
    if (argc != 3) return usage();
    return cmd_dump(argv[2]);
  }
  if (cmd == "run") {
    return cmd_run(argv[2], argc, argv, 3);
  }
  return usage();
}
